#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "iba/headers.hpp"

namespace ibarb::faults {

FaultInjector::FaultInjector(sim::Simulator& sim,
                             const network::FabricGraph& graph,
                             FaultPlan plan, std::uint64_t seed)
    : sim_(sim), graph_(graph), plan_(std::move(plan)),
      rng_(seed ^ 0xFA175EEDull) {
  probe_ = sim_.telemetry().add_probe([this](obs::Snapshot& snap) {
    snap.add_counter("faults.link_down_events", stats_.link_down_events);
    snap.add_counter("faults.link_up_events", stats_.link_up_events);
    snap.add_counter("faults.stuck_windows", stats_.stuck_windows);
    snap.add_counter("faults.slow_windows", stats_.slow_windows);
    snap.add_counter("faults.overload_bursts", stats_.overload_bursts);
    snap.add_counter("faults.corrupt_attempts", stats_.corrupt_attempts);
    snap.add_counter("faults.crc_rejected", stats_.crc_rejected);
    snap.add_counter("faults.crc_escaped", stats_.crc_escaped);
    snap.add_counter("faults.dropped_packets", stats_.dropped_packets);
    snap.add_counter("faults.flushed_packets", stats_.flushed_packets);
  });
}

FaultInjector::~FaultInjector() { sim_.telemetry().remove_probe(probe_); }

const FaultInjector::PortFaultState* FaultInjector::find_state(
    iba::NodeId node, iba::PortIndex port) const {
  const auto it = ports_.find(key(node, port));
  return it == ports_.end() ? nullptr : &it->second;
}

bool FaultInjector::link_is_down(iba::NodeId node, iba::PortIndex port) const {
  const auto* s = find_state(node, port);
  return s != nullptr && s->down > 0;
}

bool FaultInjector::quiescent() const noexcept {
  for (const auto& [key, s] : ports_) {
    if (s.down != 0 || s.stuck != 0 || !s.corrupt.empty() ||
        !s.drop.empty() || !s.slow.empty())
      return false;
  }
  return true;
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("fault plan armed twice");
  armed_ = true;
  sim_.attach_fault_hooks(this);
  for (const auto& ev : plan_.events()) {
    sim_.call_at(ev.at, [this, ev] { engage(ev); });
    if (ev.duration > 0)
      sim_.call_at(ev.at + ev.duration, [this, ev] { disengage(ev); });
  }
}

void FaultInjector::notify(iba::NodeId node, iba::PortIndex port,
                           bool healthy) {
  if (obs::SeriesRecorder* s = sim_.series()) {
    s->record_transition(sim_.now(),
                         healthy ? obs::SeriesTransition::Kind::kLinkUp
                                 : obs::SeriesTransition::Kind::kLinkDown,
                         /*conn=*/-1, node, port);
  }
  if (listener_) listener_(node, port, healthy, sim_.now());
}

void FaultInjector::set_link_down(iba::NodeId node, iba::PortIndex port,
                                  bool down) {
  // A link is full-duplex: both endpoints stop transmitting, and the
  // hardware discards whatever was queued behind the dead transmitter.
  const auto peer = graph_.peer(node, port);
  assert(peer.has_value() && "fault targets a wired port");
  if (down) {
    ++state(node, port).down;
    ++state(peer->node, peer->port).down;
    stats_.flushed_packets += sim_.flush_output_queue(node, port);
    stats_.flushed_packets += sim_.flush_output_queue(peer->node, peer->port);
    ++stats_.link_down_events;
  } else {
    --state(node, port).down;
    --state(peer->node, peer->port).down;
    ++stats_.link_up_events;
    sim_.kick_port(node, port);
    sim_.kick_port(peer->node, peer->port);
  }
}

void FaultInjector::engage(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kLinkFlap:
      set_link_down(ev.node, ev.port, true);
      notify(ev.node, ev.port, false);
      break;
    case FaultKind::kStuck:
      ++state(ev.node, ev.port).stuck;
      ++stats_.stuck_windows;
      notify(ev.node, ev.port, false);
      break;
    case FaultKind::kSlow:
      state(ev.node, ev.port).slow.push_back(ev.factor);
      ++stats_.slow_windows;
      notify(ev.node, ev.port, false);
      break;
    case FaultKind::kCorrupt:
      state(ev.node, ev.port).corrupt.push_back(ev.probability);
      break;
    case FaultKind::kDrop:
      state(ev.node, ev.port).drop.push_back(ev.probability);
      break;
    case FaultKind::kOverload:
      sim_.set_flow_overdrive(ev.flow, ev.factor);
      ++stats_.overload_bursts;
      break;
  }
}

void FaultInjector::disengage(const FaultEvent& ev) {
  const auto erase_one = [](std::vector<double>& v, double value) {
    const auto it = std::find(v.begin(), v.end(), value);
    assert(it != v.end());
    v.erase(it);
  };
  switch (ev.kind) {
    case FaultKind::kLinkFlap:
      set_link_down(ev.node, ev.port, false);
      notify(ev.node, ev.port, true);
      break;
    case FaultKind::kStuck:
      --state(ev.node, ev.port).stuck;
      sim_.kick_port(ev.node, ev.port);
      notify(ev.node, ev.port, true);
      break;
    case FaultKind::kSlow:
      erase_one(state(ev.node, ev.port).slow, ev.factor);
      notify(ev.node, ev.port, true);
      break;
    case FaultKind::kCorrupt:
      erase_one(state(ev.node, ev.port).corrupt, ev.probability);
      break;
    case FaultKind::kDrop:
      erase_one(state(ev.node, ev.port).drop, ev.probability);
      break;
    case FaultKind::kOverload:
      sim_.set_flow_overdrive(ev.flow, 1.0);
      break;
  }
}

bool FaultInjector::may_transmit(iba::NodeId node, iba::PortIndex port) {
  const auto* s = find_state(node, port);
  return s == nullptr || (s->down == 0 && s->stuck == 0);
}

iba::Cycle FaultInjector::stretch_serialization(iba::NodeId node,
                                                iba::PortIndex port,
                                                iba::Cycle cycles) {
  const auto* s = find_state(node, port);
  if (s == nullptr || s->slow.empty()) return cycles;
  const double factor = *std::max_element(s->slow.begin(), s->slow.end());
  return std::max(cycles, static_cast<iba::Cycle>(
                              static_cast<double>(cycles) * factor));
}

sim::FaultHooks::RxVerdict FaultInjector::on_link_rx(iba::NodeId node,
                                                     iba::PortIndex port,
                                                     const iba::Packet& p) {
  const auto* s = find_state(node, port);
  if (s == nullptr) return RxVerdict::kDeliver;

  if (!s->drop.empty()) {
    const double prob = *std::max_element(s->drop.begin(), s->drop.end());
    if (rng_.chance(prob)) {
      ++stats_.dropped_packets;
      return RxVerdict::kDrop;
    }
  }
  if (!s->corrupt.empty()) {
    const double prob =
        *std::max_element(s->corrupt.begin(), s->corrupt.end());
    if (rng_.chance(prob)) {
      ++stats_.corrupt_attempts;
      // Damage the actual wire image and let the real CRC path judge it.
      const auto mode_draw = rng_.below(10);
      const Corruption how = mode_draw < 7   ? Corruption::kBitFlip
                             : mode_draw < 9 ? Corruption::kBurst
                                             : Corruption::kTruncate;
      if (corruption_detected(p, how, rng_.next())) {
        ++stats_.crc_rejected;
        return RxVerdict::kDrop;
      }
      ++stats_.crc_escaped;  // delivered with undetected damage
    }
  }
  return RxVerdict::kDeliver;
}

void FaultInjector::damage_wire_image(std::vector<std::uint8_t>& image,
                                      Corruption how, std::uint64_t entropy) {
  if (image.empty()) return;
  util::SplitMix64 sm(entropy);
  switch (how) {
    case Corruption::kBitFlip: {
      const auto bit = sm.next() % (image.size() * 8);
      image[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      break;
    }
    case Corruption::kTruncate: {
      // Chop at least one trailing byte (a cut-through link dying mid-frame).
      const auto keep = sm.next() % image.size();
      image.resize(keep);
      break;
    }
    case Corruption::kBurst: {
      // Up to 32 consecutive damaged bits — the classic burst-error model
      // CRC32 is guaranteed to detect.
      const auto len = 2 + sm.next() % 31;
      const auto start = sm.next() % (image.size() * 8);
      for (std::uint64_t b = start; b < start + len && b < image.size() * 8;
           ++b)
        image[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
      break;
    }
  }
}

bool FaultInjector::corruption_detected(const iba::Packet& p, Corruption how,
                                        std::uint64_t entropy) {
  auto image = iba::to_wire(p);
  damage_wire_image(image, how, entropy);
  return !iba::parse_packet(image).has_value();
}

}  // namespace ibarb::faults
