#include "faults/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace ibarb::faults {

RecoveryCoordinator::RecoveryCoordinator(sim::Simulator& sim,
                                         const network::FabricGraph& graph,
                                         subnet::SubnetManager& sm,
                                         qos::AdmissionControl& admission,
                                         FaultInjector& injector,
                                         RecoveryConfig cfg)
    : sim_(sim), graph_(graph), sm_(sm), admission_(admission),
      injector_(injector), cfg_(cfg) {
  injector_.set_link_state_listener(
      [this](iba::NodeId node, iba::PortIndex port, bool healthy,
             iba::Cycle now) { on_link_state(node, port, healthy, now); });
  probe_ = sim_.telemetry().add_probe([this](obs::Snapshot& snap) {
    snap.add_counter("recovery.resweeps", stats_.resweeps);
    snap.add_counter("recovery.failed_resweeps", stats_.failed_resweeps);
    snap.add_counter("recovery.smps_sent", stats_.smps_sent);
    snap.add_counter("recovery.rerouted", stats_.rerouted);
    snap.add_counter("recovery.suspended", stats_.suspended);
    snap.add_counter("recovery.suspended_guaranteed",
                     stats_.suspended_guaranteed);
    snap.add_counter("recovery.suspended_best_effort",
                     stats_.suspended_best_effort);
    snap.add_counter("recovery.restored", stats_.restored);
    snap.add_counter("recovery.shed_best_effort", stats_.shed_best_effort);
    snap.add_counter("recovery.purged_in_flight", stats_.purged_in_flight);
    snap.add_counter("recovery.guarantee_revocations",
                     stats_.guarantee_revocations);
    snap.merge_gauge("recovery.max_recovery_latency",
                     static_cast<double>(stats_.max_recovery_latency),
                     obs::MergePolicy::kMax);
  });
}

RecoveryCoordinator::~RecoveryCoordinator() {
  sim_.telemetry().remove_probe(probe_);
}

void RecoveryCoordinator::track(qos::ConnectionId id, std::uint32_t flow) {
  Tracked t;
  t.id = id;
  t.flow = flow;
  t.guaranteed = true;
  t.request = admission_.connection(id).request;
  tracked_.push_back(std::move(t));
}

void RecoveryCoordinator::track_best_effort(qos::ConnectionId id,
                                            std::uint32_t flow) {
  Tracked t;
  t.id = id;
  t.flow = flow;
  t.guaranteed = false;
  t.request = admission_.connection(id).request;
  tracked_.push_back(std::move(t));
}

void RecoveryCoordinator::untrack(qos::ConnectionId id) {
  const auto it = std::find_if(tracked_.begin(), tracked_.end(),
                               [id](const Tracked& t) { return t.id == id; });
  if (it != tracked_.end()) tracked_.erase(it);
}

unsigned RecoveryCoordinator::suspended_now() const {
  return static_cast<unsigned>(
      std::count_if(tracked_.begin(), tracked_.end(),
                    [](const Tracked& t) { return !t.active; }));
}

std::vector<RecoveryCoordinator::TrackedState>
RecoveryCoordinator::export_tracked() const {
  std::vector<TrackedState> out;
  out.reserve(tracked_.size());
  for (const auto& t : tracked_)
    out.push_back(TrackedState{t.id, t.flow, t.guaranteed, t.active,
                               t.request});
  return out;
}

void RecoveryCoordinator::import_tracked(
    const std::vector<TrackedState>& tracked) {
  if (!quiescent())
    throw std::logic_error("import_tracked while recovery is in flight");
  tracked_.clear();
  tracked_.reserve(tracked.size());
  for (const auto& s : tracked)
    tracked_.push_back(Tracked{s.id, s.flow, s.guaranteed, s.active,
                               s.request});
}

void RecoveryCoordinator::on_link_state(iba::NodeId node, iba::PortIndex port,
                                        bool healthy, iba::Cycle now) {
  // The trap names one endpoint; the whole link is affected, so keep both
  // ends in the avoid set (the re-sweep masks a link if either endpoint is
  // listed, and post-sweep queue flushes need both transmitters).
  std::vector<network::PortRef> ends{network::PortRef{node, port}};
  if (const auto peer = graph_.peer(node, port))
    ends.push_back(network::PortRef{peer->node, peer->port});
  for (const auto& end : ends) {
    if (healthy) {
      const auto it = std::find(avoid_.begin(), avoid_.end(), end);
      if (it != avoid_.end()) avoid_.erase(it);
    } else {
      avoid_.push_back(end);
    }
  }
  // Coalesce traps arriving within one reaction window into a single
  // re-sweep, timed from the first of them.
  if (!repair_pending_) {
    repair_pending_ = true;
    first_trap_ = now;
    sim_.call_at(now + cfg_.sm_reaction_delay,
                 [this] { repair(first_trap_); });
  }
}

bool RecoveryCoordinator::path_matches_routes(const Tracked& t) const {
  const auto& hops = admission_.connection(t.id).hops;
  const auto path =
      sm_.routes().path(t.request.src_host, t.request.dst_host);
  if (hops.size() != path.size()) return false;
  for (std::size_t i = 0; i < hops.size(); ++i)
    if (!(hops[i].port == path[i])) return false;
  return true;
}

bool RecoveryCoordinator::path_touches_blocked(const Tracked& t) {
  const auto& hops = admission_.connection(t.id).hops;
  return std::any_of(hops.begin(), hops.end(),
                     [&](const qos::HopReservation& h) {
                       return !injector_.may_transmit(h.port.node,
                                                      h.port.port);
                     });
}

void RecoveryCoordinator::suspend(Tracked& t, bool routes_ok) {
  if (admission_.is_live(t.id)) admission_.release(t.id);
  if (t.active) {
    if (t.flow != kNoFlow) sim_.stop_flow(t.flow);
    t.active = false;
    ++stats_.suspended;
    ++(t.guaranteed ? stats_.suspended_guaranteed
                    : stats_.suspended_best_effort);
    if (obs::SeriesRecorder* s = sim_.series())
      if (t.flow != kNoFlow)
        s->record_transition(sim_.now(),
                             obs::SeriesTransition::Kind::kSuspended, t.flow);
    if (change_listener_) change_listener_(t.id, 0);
  }
  // A guaranteed connection refused while sheddable best-effort capacity
  // remained on its (routable) path would break the degradation contract.
  if (t.guaranteed && routes_ok) {
    const auto path =
        sm_.routes().path(t.request.src_host, t.request.dst_host);
    for (const auto& other : tracked_) {
      if (other.guaranteed || !other.active || !admission_.is_live(other.id))
        continue;
      const auto& hops = admission_.connection(other.id).hops;
      const bool overlaps = std::any_of(
          hops.begin(), hops.end(), [&](const qos::HopReservation& h) {
            return std::find(path.begin(), path.end(), h.port) != path.end();
          });
      if (overlaps) {
        ++stats_.guarantee_revocations;
        break;
      }
    }
  }
}

bool RecoveryCoordinator::readmit(Tracked& t, bool count_as_restore) {
  std::optional<qos::ConnectionId> id;
  if (t.guaranteed) {
    auto res = admission_.request_degrading(t.request);
    // Stop the flows of any best-effort connections shed to make room.
    for (const auto victim_id : res.shed) {
      for (auto& other : tracked_) {
        if (other.id == victim_id && other.active && !other.guaranteed) {
          if (other.flow != kNoFlow) sim_.stop_flow(other.flow);
          other.active = false;
          ++stats_.shed_best_effort;
          if (obs::SeriesRecorder* s = sim_.series())
            if (other.flow != kNoFlow)
              s->record_transition(sim_.now(),
                                   obs::SeriesTransition::Kind::kShed,
                                   other.flow);
          if (change_listener_) change_listener_(other.id, 0);
        }
      }
    }
    id = res.id;
  } else {
    id = admission_.request_best_effort(t.request);
  }
  if (!id) return false;

  const auto old_id = t.id;
  t.id = *id;
  if (change_listener_ && old_id != t.id) change_listener_(old_id, t.id);
  // A re-route may legitimately reuse a port that an earlier repair
  // abandoned this flow on: lift any purge barrier along the new path.
  if (t.flow != kNoFlow)
    for (const auto& h : admission_.connection(t.id).hops)
      if (graph_.is_switch(h.port.node))
        sim_.clear_flow_purge(h.port.node, h.port.port, t.flow);
  // The detour may be longer: refresh the metrics deadline so misses are
  // judged against the guarantee of the path actually in use.
  auto& metrics = sim_.metrics();
  if (t.flow != kNoFlow && t.flow < metrics.connections.size())
    metrics.connections[t.flow].deadline = admission_.connection(t.id).deadline;
  if (!t.active) {
    if (t.flow != kNoFlow) sim_.resume_flow(t.flow);
    t.active = true;
    if (count_as_restore) {
      ++stats_.restored;
      if (obs::SeriesRecorder* s = sim_.series())
        if (t.flow != kNoFlow)
          s->record_transition(sim_.now(),
                               obs::SeriesTransition::Kind::kRestored, t.flow);
    }
  }
  if (t.active && !count_as_restore) {
    ++stats_.rerouted;
    if (obs::SeriesRecorder* s = sim_.series())
      if (t.flow != kNoFlow)
        s->record_transition(sim_.now(),
                             obs::SeriesTransition::Kind::kRerouted, t.flow);
  }
  return true;
}

void RecoveryCoordinator::repair(iba::Cycle fault_time) {
  repair_pending_ = false;
  const auto report = sm_.resweep(sim_, avoid_);
  ++stats_.resweeps;
  stats_.smps_sent += report.smps_sent;
  if (!report.routes_changed) ++stats_.failed_resweeps;

  if (report.routes_changed) {
    // Release every live tracked connection whose reservation no longer
    // matches the new routes, then re-admit over them — guaranteed classes
    // first so degradation can shed best-effort load for them.
    struct StaleEntry {
      Tracked* t;
      std::vector<network::PortRef> old_switch_hops;
    };
    std::vector<StaleEntry> stale;
    for (auto& t : tracked_) {
      if (!t.active || !admission_.is_live(t.id)) continue;
      if (path_matches_routes(t)) continue;
      StaleEntry e{&t, {}};
      for (const auto& h : admission_.connection(t.id).hops)
        if (graph_.is_switch(h.port.node))
          e.old_switch_hops.push_back(h.port);
      stale.push_back(std::move(e));
    }
    for (const auto& e : stale) admission_.release(e.t->id);
    std::stable_partition(
        stale.begin(), stale.end(),
        [](const StaleEntry& e) { return e.t->guaranteed; });
    for (auto& e : stale) {
      const bool ok = readmit(*e.t, /*count_as_restore=*/false);
      if (!ok) suspend(*e.t, true);
      // Abandon in-flight packets on old-path ports the connection no
      // longer uses: their VL's arbitration weight moved away with the
      // reservation, so anything left queued would starve until some
      // unrelated reprogram revived the VL — and then arrive absurdly
      // late. A reroute drops them instead (RC retransmission or the
      // source's next packets recover the stream).
      std::vector<network::PortRef> keep;
      if (ok)
        for (const auto& h : admission_.connection(e.t->id).hops)
          keep.push_back(h.port);
      for (const auto& port : e.old_switch_hops) {
        if (e.t->flow == kNoFlow) break;
        if (std::find(keep.begin(), keep.end(), port) != keep.end())
          continue;
        stats_.purged_in_flight +=
            sim_.purge_flow_from_output(port.node, port.port, e.t->flow);
      }
    }
    // Links may have come back: give previously suspended connections
    // another chance, guaranteed classes first.
    for (const bool want_guaranteed : {true, false}) {
      for (auto& t : tracked_) {
        if (t.active || t.guaranteed != want_guaranteed) continue;
        readmit(t, /*count_as_restore=*/true);
      }
    }
  } else {
    // Fail-static (partitioned or unroutable fabric): the old forwarding
    // state stays installed. Park every connection whose path crosses a
    // blocked port so it stops pouring packets into a dead transmitter.
    for (auto& t : tracked_) {
      if (!t.active || !admission_.is_live(t.id)) continue;
      if (path_touches_blocked(t)) suspend(t, false);
    }
  }

  // Anything that accumulated behind a blocked transmitter between the
  // fault and the reprogram is hardware-discarded now.
  for (const auto& end : avoid_)
    if (!injector_.may_transmit(end.node, end.port))
      sim_.flush_output_queue(end.node, end.port);

  admission_.program(sim_);
  audit();

  const iba::Cycle latency = (sim_.now() - fault_time) +
                             static_cast<iba::Cycle>(report.smps_sent) *
                                 cfg_.mad_cycles;
  stats_.last_recovery_latency = latency;
  stats_.max_recovery_latency = std::max(stats_.max_recovery_latency, latency);
}

void RecoveryCoordinator::audit() {
#ifndef NDEBUG
  std::string why;
  assert(admission_.audit_tables(&why) && "post-recovery table audit");
#endif
}

}  // namespace ibarb::faults
