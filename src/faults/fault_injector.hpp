// FaultInjector: arms a FaultPlan on a Simulator and intercepts its data
// path through the sim::FaultHooks interface.
//
// Every fault activation/deactivation travels through Simulator::call_at —
// i.e. through the same deterministic EventQueue as the traffic itself — and
// all randomness (per-packet corruption coin flips, corrupted bit choice)
// comes from one seeded stream consumed in event order, so a (plan, seed)
// pair replays bit-identically.
//
// Corruption is physical, not abstract: the packet is serialized to real
// wire bytes (iba/headers), bits are damaged, and iba::parse_packet — the
// same ICRC/VCRC validation path the protocol tests exercise — decides
// whether the receiver detects it. A detected corruption becomes a drop
// (the RC transport's retransmission recovers it); an escape would be
// delivered and is counted separately (CRC32+CRC16 make this practically
// impossible for the damage models used).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "faults/fault_plan.hpp"
#include "network/graph.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ibarb::faults {

struct FaultStats {
  std::uint64_t link_down_events = 0;
  std::uint64_t link_up_events = 0;
  std::uint64_t stuck_windows = 0;
  std::uint64_t slow_windows = 0;
  std::uint64_t overload_bursts = 0;
  std::uint64_t corrupt_attempts = 0;  ///< Packets picked for corruption.
  std::uint64_t crc_rejected = 0;      ///< ... detected and dropped.
  std::uint64_t crc_escaped = 0;       ///< ... delivered despite damage.
  std::uint64_t dropped_packets = 0;   ///< Silent drop-window losses.
  std::uint64_t flushed_packets = 0;   ///< Discarded from downed ports.
};

class FaultInjector final : public sim::FaultHooks {
 public:
  /// Registers a telemetry probe publishing "faults.*" counters into the
  /// simulator's registry; the destructor removes it.
  FaultInjector(sim::Simulator& sim, const network::FabricGraph& graph,
                FaultPlan plan, std::uint64_t seed);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every plan event on the simulator clock and attaches the
  /// hooks. Call once, before running.
  void arm();

  /// Observer for route-relevant health transitions (flap/stuck/slow):
  /// healthy=false when the fault engages, true when it clears. This is
  /// what the RecoveryCoordinator subscribes to (the modeled trap).
  using LinkStateListener = std::function<void(
      iba::NodeId node, iba::PortIndex port, bool healthy, iba::Cycle now)>;
  void set_link_state_listener(LinkStateListener listener) {
    listener_ = std::move(listener);
  }

  const FaultStats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }
  bool link_is_down(iba::NodeId node, iba::PortIndex port) const;

  /// True when no fault window is currently engaged on any port. The churn
  /// engine only snapshots at quiescent ticks, so a restored world can arm
  /// the plan's tail events on a fresh injector and replay identically.
  bool quiescent() const noexcept;

  /// Restores the counters published by the "faults.*" probe, so a world
  /// rebuilt from a snapshot reports the same totals as the original.
  void restore_stats(const FaultStats& stats) noexcept { stats_ = stats; }

  // sim::FaultHooks
  bool may_transmit(iba::NodeId node, iba::PortIndex port) override;
  iba::Cycle stretch_serialization(iba::NodeId node, iba::PortIndex port,
                                   iba::Cycle cycles) override;
  RxVerdict on_link_rx(iba::NodeId node, iba::PortIndex port,
                       const iba::Packet& p) override;

  /// The damage models the injector applies to wire images (exposed so
  /// test_crc proves the CRC path rejects exactly what is injected).
  enum class Corruption : std::uint8_t { kBitFlip, kTruncate, kBurst };

  /// Applies `how` to the packet's wire image (entropy seeds the damaged
  /// bit/length choice) and runs it through iba::parse_packet. Returns true
  /// when the receiver detects the damage (parse fails).
  static bool corruption_detected(const iba::Packet& p, Corruption how,
                                  std::uint64_t entropy);

  /// Same damage on a caller-supplied wire image (test helper).
  static void damage_wire_image(std::vector<std::uint8_t>& image,
                                Corruption how, std::uint64_t entropy);

 private:
  struct PortFaultState {
    int down = 0;   ///< Nesting count of active link-down windows.
    int stuck = 0;  ///< Nesting count of active stuck windows.
    std::vector<double> corrupt;  ///< Active corruption probabilities.
    std::vector<double> drop;     ///< Active drop probabilities.
    std::vector<double> slow;     ///< Active slowdown factors.
  };

  static std::uint32_t key(iba::NodeId node, iba::PortIndex port) {
    return (static_cast<std::uint32_t>(node) << 8) | port;
  }
  PortFaultState& state(iba::NodeId node, iba::PortIndex port) {
    return ports_[key(node, port)];
  }
  const PortFaultState* find_state(iba::NodeId node,
                                   iba::PortIndex port) const;

  void engage(const FaultEvent& ev);
  void disengage(const FaultEvent& ev);
  void set_link_down(iba::NodeId node, iba::PortIndex port, bool down);
  void notify(iba::NodeId node, iba::PortIndex port, bool healthy);

  sim::Simulator& sim_;
  const network::FabricGraph& graph_;
  FaultPlan plan_;
  util::Xoshiro256 rng_;
  std::map<std::uint32_t, PortFaultState> ports_;
  LinkStateListener listener_;
  FaultStats stats_;
  bool armed_ = false;
  obs::TelemetryRegistry::ProbeId probe_ = 0;
};

}  // namespace ibarb::faults
