// RcSession: drives one RcSender/RcReceiver queue pair over the simulated
// fabric, end to end.
//
// The transport state machines in transport/rc are clockless and wireless;
// this adapter gives them both. Two external flows are registered with the
// simulator (data src→dst, acknowledgements dst→src) so RC packets ride the
// real arbitrated data path — through SL→VL mapping, credits, VL
// arbitration, and whatever the fault layer does to them. A periodic
// control tick posts messages, runs the retransmission timer and pumps the
// send window; deliveries come back through the simulator's delivery
// listener (the bench dispatches to sessions via wants()).
//
// Packets lost to injected faults — CRC-rejected corruption, drop windows,
// link flushes — surface to the sender only as missing ACKs or NAKs, so
// what this measures is genuine go-back-N recovery with capped exponential
// backoff over a lossy fabric.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "sim/simulator.hpp"
#include "transport/rc.hpp"

namespace ibarb::faults {

class RcSession {
 public:
  struct Config {
    iba::NodeId src_host = iba::kInvalidNode;
    iba::NodeId dst_host = iba::kInvalidNode;
    iba::ServiceLevel sl = 10;           ///< A best-effort class by default.
    std::uint32_t message_bytes = 4096;
    unsigned messages = 64;
    iba::Cycle message_interval = 50'000;
    iba::Cycle tick = 4'000;             ///< Timer/pump granularity.
    iba::Cycle start = 0;
    std::uint64_t seed = 0;
    transport::RcConfig rc;
  };

  /// Registers a telemetry probe publishing "rc.*" counters into the
  /// simulator's registry (several sessions aggregate into the same names);
  /// the destructor removes it.
  RcSession(sim::Simulator& sim, Config cfg);
  ~RcSession();

  RcSession(const RcSession&) = delete;
  RcSession& operator=(const RcSession&) = delete;

  /// True when `p` belongs to this session's data or ack flow.
  bool wants(const iba::Packet& p) const noexcept {
    return p.connection == data_flow_ || p.connection == ack_flow_;
  }

  /// Feed a fabric delivery (the bench's delivery listener calls this for
  /// every packet that wants() claims).
  void on_delivery(const iba::Packet& p, iba::Cycle now);

  bool complete() const noexcept {
    return messages_completed_ >= cfg_.messages;
  }
  bool failed() const noexcept { return tx_.failed(); }

  struct SessionStats {
    std::uint64_t messages_completed = 0;
    /// Packets that needed at least one retransmission and were eventually
    /// delivered — each one is a demonstrated fault recovery.
    std::uint64_t recovered_packets = 0;
    /// Worst first-injection→delivery latency among recovered packets.
    iba::Cycle max_recovery_latency = 0;
  };
  SessionStats session_stats() const;
  const transport::RcSender::Stats& tx_stats() const noexcept {
    return tx_.stats();
  }
  const transport::RcReceiver::Stats& rx_stats() const noexcept {
    return rx_.stats();
  }

 private:
  void tick();
  void pump();

  sim::Simulator& sim_;
  Config cfg_;
  transport::RcSender tx_;
  transport::RcReceiver rx_;
  std::uint32_t data_flow_ = 0;
  std::uint32_t ack_flow_ = 0;
  unsigned posted_ = 0;
  std::uint64_t messages_completed_ = 0;
  std::uint64_t recovered_packets_ = 0;
  iba::Cycle max_recovery_latency_ = 0;
  /// First-injection time per PSN (recovery-latency bookkeeping).
  std::unordered_map<std::uint32_t, iba::Cycle> first_injected_;
  /// PSNs that went to the wire more than once.
  std::unordered_set<std::uint32_t> retransmitted_;
  obs::TelemetryRegistry::ProbeId probe_ = 0;
};

}  // namespace ibarb::faults
