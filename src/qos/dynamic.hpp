// Dynamic connection scenarios: admission, traffic and teardown interleaved
// with the simulation, exercising the paper's *dynamic* claims — releases
// trigger the defragmentation algorithm while traffic is flowing, and the
// freed (re-coalesced) entries admit later, stricter requests.
//
// The driver keeps a time-ordered script of connection arrivals/departures;
// run_until() advances the simulator to each event, performs the admission
// action, reprograms the affected arbitration tables in place (arbiters keep
// their round-robin position across reprogramming), and wires the traffic
// generator up or down.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "qos/admission.hpp"
#include "sim/simulator.hpp"

namespace ibarb::qos {

struct ScheduledConnection {
  iba::Cycle arrive = 0;
  iba::Cycle depart = iba::kNeverCycle;  ///< kNeverCycle = stays forever.
  ConnectionRequest request;
  std::uint32_t payload_bytes = 256;
  double oversend_factor = 1.0;

  enum class State : std::uint8_t {
    kPending,   ///< Arrival not reached yet.
    kActive,    ///< Admitted, traffic running.
    kRejected,  ///< Admission said no at arrival time.
    kDeparted,  ///< Released again.
  };
  State state = State::kPending;
  std::optional<ConnectionId> id;
  std::optional<std::uint32_t> flow;  ///< Simulator flow index.
};

class DynamicScenario {
 public:
  DynamicScenario(sim::Simulator& sim, AdmissionControl& admission)
      : sim_(sim), admission_(admission) {}

  /// Adds one scripted connection; returns its index. Must be called before
  /// the first run_until() that passes its arrival time.
  std::size_t add(ScheduledConnection sc);

  /// Advances simulation and script together up to cycle `t`.
  void run_until(iba::Cycle t);

  const ScheduledConnection& entry(std::size_t index) const {
    return script_.at(index);
  }
  std::size_t size() const noexcept { return script_.size(); }

  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t released() const noexcept { return released_; }

 private:
  struct PendingEvent {
    iba::Cycle time;
    std::size_t index;
    bool is_departure;
  };

  void process(const PendingEvent& ev);

  sim::Simulator& sim_;
  AdmissionControl& admission_;
  std::vector<ScheduledConnection> script_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace ibarb::qos
