#include "qos/traffic_classes.hpp"

#include <cmath>

namespace ibarb::qos {

const char* to_string(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kDbts: return "DBTS";
    case TrafficCategory::kDb: return "DB";
    case TrafficCategory::kPbe: return "PBE";
    case TrafficCategory::kBe: return "BE";
    case TrafficCategory::kCh: return "CH";
  }
  return "?";
}

std::vector<SlProfile> paper_catalogue() {
  using TC = TrafficCategory;
  std::vector<SlProfile> v;
  // SL, VL, category, max distance, bandwidth range (Mbps).
  // Distances 2..16 carry the strictest deadlines; 32 and 64 are split by
  // mean bandwidth (2 and 4 subclasses). SLs 5 and 9 hold the big-bandwidth
  // connections (matches the paper's jitter discussion in §4.3).
  v.push_back(SlProfile{0, 0, TC::kDbts, 2, 1.0, 2.0});
  v.push_back(SlProfile{1, 1, TC::kDbts, 4, 1.0, 4.0});
  v.push_back(SlProfile{2, 2, TC::kDbts, 8, 1.0, 8.0});
  v.push_back(SlProfile{3, 3, TC::kDbts, 16, 1.0, 8.0});
  v.push_back(SlProfile{4, 4, TC::kDbts, 32, 1.0, 8.0});
  v.push_back(SlProfile{5, 5, TC::kDbts, 32, 16.0, 32.0});
  v.push_back(SlProfile{6, 6, TC::kDb, 64, 1.0, 4.0});
  v.push_back(SlProfile{7, 7, TC::kDb, 64, 1.0, 8.0});
  v.push_back(SlProfile{8, 8, TC::kDb, 64, 4.0, 8.0});
  v.push_back(SlProfile{9, 9, TC::kDb, 64, 16.0, 32.0});
  // Best-effort family: served from the low-priority table (20 % of the
  // link is left to them by admission control).
  v.push_back(SlProfile{10, 10, TC::kPbe, 0, 0.0, 0.0});
  v.push_back(SlProfile{11, 11, TC::kBe, 0, 0.0, 0.0});
  v.push_back(SlProfile{12, 12, TC::kCh, 0, 0.0, 0.0});
  return v;
}

const SlProfile* pick_sl(const std::vector<SlProfile>& catalogue,
                         unsigned required_distance, double mbps) {
  const SlProfile* best = nullptr;
  double best_gap = 0.0;
  for (const auto& p : catalogue) {
    if (p.max_distance == 0) continue;  // best effort
    if (p.max_distance > required_distance) continue;  // too lax: no guarantee
    // Prefer the laxest admissible distance (uses fewest entries), then the
    // closest bandwidth range.
    const bool in_range = mbps >= p.min_mbps && mbps <= p.max_mbps;
    const double gap =
        in_range ? 0.0
                 : std::min(std::abs(mbps - p.min_mbps),
                            std::abs(mbps - p.max_mbps));
    if (best == nullptr || p.max_distance > best->max_distance ||
        (p.max_distance == best->max_distance && gap < best_gap)) {
      best = &p;
      best_gap = gap;
    }
  }
  return best;
}

const SlProfile* find_sl(const std::vector<SlProfile>& catalogue,
                         iba::ServiceLevel sl) {
  for (const auto& p : catalogue)
    if (p.sl == sl) return &p;
  return nullptr;
}

std::vector<std::pair<iba::VirtualLane, std::uint8_t>> low_priority_config(
    const std::vector<SlProfile>& catalogue) {
  std::vector<std::pair<iba::VirtualLane, std::uint8_t>> out;
  for (const auto& p : catalogue) {
    switch (p.category) {
      case TrafficCategory::kPbe: out.emplace_back(p.vl, 128); break;
      case TrafficCategory::kBe: out.emplace_back(p.vl, 64); break;
      case TrafficCategory::kCh: out.emplace_back(p.vl, 16); break;
      default: break;
    }
  }
  return out;
}

}  // namespace ibarb::qos
