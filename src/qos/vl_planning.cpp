#include "qos/vl_planning.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibarb::qos {

VlPlan plan_vl_folding(const std::vector<SlProfile>& catalogue,
                       unsigned data_vls) {
  if (data_vls == 0 || data_vls >= iba::kManagementVl)
    throw std::invalid_argument("data_vls must be in 1..14");

  VlPlan plan;
  plan.data_vls = data_vls;
  plan.catalogue = catalogue;

  // Enough lanes for every class: keep the catalogue's own assignment.
  bool fits = true;
  for (const auto& p : plan.catalogue)
    if (p.vl >= data_vls) fits = false;
  if (fits) {
    plan.mapping = iba::SlToVlMappingTable();
    for (const auto& p : plan.catalogue) plan.mapping.set(p.sl, p.vl);
    return plan;
  }

  std::vector<SlProfile*> qos;
  std::vector<SlProfile*> best_effort;
  for (auto& p : plan.catalogue)
    (p.max_distance != 0 ? qos : best_effort).push_back(&p);

  // Lanes for QoS: all but one when best-effort classes exist and must be
  // kept apart; if only one lane exists, everything shares it.
  const unsigned be_lane = data_vls - 1;
  const unsigned qos_lanes =
      best_effort.empty() ? data_vls : std::max(1u, data_vls - 1);

  // Most restrictive first, so blocks of adjacent distances share a lane
  // and the tightening cost is minimal.
  std::sort(qos.begin(), qos.end(), [](const SlProfile* a, const SlProfile* b) {
    if (a->max_distance != b->max_distance)
      return a->max_distance < b->max_distance;
    return a->sl < b->sl;
  });

  // Deal in contiguous blocks: ceil-sized prefix blocks keep lane loads even.
  const auto n = qos.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto lane = static_cast<unsigned>(i * qos_lanes / n);
    qos[i]->vl = static_cast<iba::VirtualLane>(lane);
  }
  // Tighten distances: every SL on a lane adopts the lane's minimum.
  for (unsigned lane = 0; lane < qos_lanes; ++lane) {
    unsigned min_distance = iba::kArbTableEntries;
    for (const auto* p : qos)
      if (p->vl == lane) min_distance = std::min(min_distance, p->max_distance);
    for (auto* p : qos)
      if (p->vl == lane) p->max_distance = min_distance;
  }
  for (auto* p : best_effort)
    p->vl = static_cast<iba::VirtualLane>(be_lane);

  plan.mapping = iba::SlToVlMappingTable();
  for (const auto& p : plan.catalogue) plan.mapping.set(p.sl, p.vl);
  return plan;
}

}  // namespace ibarb::qos
