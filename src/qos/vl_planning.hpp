// SL→VL planning for devices with fewer than 16 virtual lanes (paper §3.2).
//
// "If several SLs must share a VL, connections with different latency
// requirements will coexist in the same VL. In this case we could use less
// SLs or enforce more restrictive requirements for some SLs." — this module
// implements that fold: QoS SLs are packed onto the available data VLs in
// deadline order, and every SL folded onto a VL inherits the *most
// restrictive* distance among its VL-mates, so the latency guarantee of
// every connection still holds. Best-effort classes fold onto the last
// data VL.
#pragma once

#include <vector>

#include "iba/sl_to_vl.hpp"
#include "qos/traffic_classes.hpp"

namespace ibarb::qos {

struct VlPlan {
  /// The catalogue rewritten for the reduced fabric: vl fields remapped,
  /// max_distance tightened where SLs share a lane.
  std::vector<SlProfile> catalogue;
  /// The SLtoVL table every port should be programmed with.
  iba::SlToVlMappingTable mapping;
  unsigned data_vls = 0;
};

/// Folds `catalogue` onto `data_vls` lanes (1..15).
///
/// Strategy: QoS SLs sorted by distance (most restrictive first) are dealt
/// round-robin-by-block onto the QoS lanes so that lane-mates have adjacent
/// distances; each lane's SLs all adopt the lane's minimum distance.
/// Best-effort SLs share the last lane (they have no distance to tighten).
/// With data_vls >= catalogue size the plan is the identity.
VlPlan plan_vl_folding(const std::vector<SlProfile>& catalogue,
                       unsigned data_vls);

}  // namespace ibarb::qos
