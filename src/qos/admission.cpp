#include "qos/admission.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ibarb::qos {

namespace {

std::uint64_t port_key(const network::PortRef& port) {
  return static_cast<std::uint64_t>(port.node) * 256 + port.port;
}

}  // namespace

AdmissionControl::AdmissionControl(const network::FabricGraph& graph,
                                   const network::Routes& routes,
                                   std::vector<SlProfile> catalogue,
                                   Config cfg)
    : graph_(graph), routes_(routes), catalogue_(std::move(catalogue)),
      cfg_(cfg) {
  // Eagerly create a manager for every wired output port so program() gives
  // all ports their low-priority (best-effort) configuration even before any
  // reservation lands on them.
  for (iba::NodeId node = 0; node < graph_.node_count(); ++node) {
    const unsigned ports = graph_.is_switch(node) ? graph_.port_count(node) : 1;
    for (unsigned p = 0; p < ports; ++p) {
      if (graph_.peer(node, static_cast<iba::PortIndex>(p)))
        manager_for(network::PortRef{node, static_cast<iba::PortIndex>(p)});
    }
  }
}

arbtable::TableManager& AdmissionControl::manager_for(
    const network::PortRef& port) {
  const auto key = port_key(port);
  const auto it = managers_.find(key);
  if (it != managers_.end()) return it->second;

  arbtable::TableManager::Config mc;
  mc.link_data_mbps = iba::link_mbps(graph_.link(port.node, port.port).rate);
  mc.reservable_fraction = cfg_.reservable_fraction;
  mc.policy = cfg_.policy;
  mc.defrag_on_release = cfg_.defrag_on_release;
  mc.seed = cfg_.seed ^ key;
  auto [pos, inserted] = managers_.emplace(key, arbtable::TableManager(mc));
  assert(inserted);
  // Every port serves the best-effort family from its low table and applies
  // the configured high-priority limit.
  const auto low = low_priority_config(catalogue_);
  pos->second.configure_low_priority(low);
  pos->second.set_limit_of_high_priority(cfg_.limit_of_high_priority);
  return pos->second;
}

const arbtable::TableManager& AdmissionControl::port_manager(
    iba::NodeId node, iba::PortIndex port) const {
  const auto it = managers_.find(port_key(network::PortRef{node, port}));
  if (it == managers_.end())
    throw std::out_of_range("no reservations on this port yet");
  return it->second;
}

std::optional<ConnectionId> AdmissionControl::request(
    const ConnectionRequest& req) {
  const SlProfile* profile = find_sl(catalogue_, req.sl);
  if (profile == nullptr || profile->max_distance == 0)
    throw std::invalid_argument("SL is not a guaranteed-traffic class");

  const bool legacy_db = cfg_.scheme == Scheme::kLegacy &&
                         profile->category == TrafficCategory::kDb;

  const auto path = routes_.path(req.src_host, req.dst_host);
  Connection conn;
  conn.request = req;

  bool ok = true;
  for (const auto& port : path) {
    auto& manager = manager_for(port);
    const auto requirement = arbtable::compute_requirement(
        req.wire_mbps, manager.config().link_data_mbps, req.max_distance);
    if (!requirement) {
      ok = false;
      break;
    }
    HopReservation hop;
    hop.port = port;
    hop.requirement = *requirement;
    hop.mbps = req.wire_mbps;
    hop.vl = profile->vl;
    if (legacy_db) {
      // Prior-work scheme: DB gets only accumulated low-table weight
      // (latency structure irrelevant — no guarantee is possible there).
      hop.low_table = true;
      if (!manager.add_low_weight(profile->vl, requirement->total_weight,
                                  req.wire_mbps)) {
        ok = false;
        break;
      }
    } else {
      const auto handle =
          manager.allocate(profile->vl, *requirement, req.wire_mbps);
      if (!handle) {
        ok = false;
        break;
      }
      hop.handle = *handle;
    }
    conn.hops.push_back(hop);
  }

  if (!ok) {
    // Roll back the hops already reserved.
    for (const auto& hop : conn.hops) {
      auto& manager = manager_for(hop.port);
      if (hop.low_table) {
        manager.remove_low_weight(hop.vl, hop.requirement.total_weight,
                                  hop.mbps);
      } else {
        manager.release(hop.handle, hop.requirement, hop.mbps);
      }
    }
    ++rejected_;
    return std::nullopt;
  }

  conn.id = next_id_++;
  conn.live = true;
  conn.category = profile->category;
  conn.deadline =
      end_to_end_guarantee(req.max_distance,
                           static_cast<unsigned>(path.size()),
                           cfg_.max_packet_wire_bytes);
  connections_.emplace(conn.id, std::move(conn));
  ++accepted_;
  return connections_.rbegin()->second.id;
}

std::optional<ConnectionId> AdmissionControl::request_best_effort(
    const ConnectionRequest& req) {
  const SlProfile* profile = find_sl(catalogue_, req.sl);
  if (profile == nullptr || profile->max_distance != 0)
    throw std::invalid_argument("SL is not a best-effort class");

  const auto path = routes_.path(req.src_host, req.dst_host);
  Connection conn;
  conn.request = req;

  bool ok = true;
  for (const auto& port : path) {
    auto& manager = manager_for(port);
    // Distance is irrelevant for the low table: the requirement only shapes
    // the accumulated weight and the bandwidth accounting.
    const auto requirement = arbtable::compute_requirement(
        req.wire_mbps, manager.config().link_data_mbps,
        iba::kArbTableEntries);
    if (!requirement ||
        !manager.add_low_weight(profile->vl, requirement->total_weight,
                                req.wire_mbps)) {
      ok = false;
      break;
    }
    HopReservation hop;
    hop.port = port;
    hop.requirement = *requirement;
    hop.mbps = req.wire_mbps;
    hop.vl = profile->vl;
    hop.low_table = true;
    conn.hops.push_back(hop);
  }

  if (!ok) {
    for (const auto& hop : conn.hops)
      manager_for(hop.port).remove_low_weight(
          hop.vl, hop.requirement.total_weight, hop.mbps);
    ++rejected_;
    return std::nullopt;
  }

  conn.id = next_id_++;
  conn.live = true;
  conn.category = profile->category;
  conn.deadline = 0;  // no latency guarantee
  connections_.emplace(conn.id, std::move(conn));
  ++accepted_;
  return connections_.rbegin()->second.id;
}

AdmissionControl::DegradeResult AdmissionControl::request_degrading(
    const ConnectionRequest& req) {
  DegradeResult result;
  result.id = request(req);
  if (result.id) return result;

  // Ports the request needs — only shedding load that shares one of them
  // can possibly help.
  const auto path = routes_.path(req.src_host, req.dst_host);

  const auto shed_rank = [](TrafficCategory c) -> int {
    switch (c) {
      case TrafficCategory::kCh: return 0;   // challenged: shed first
      case TrafficCategory::kBe: return 1;
      case TrafficCategory::kPbe: return 2;
      case TrafficCategory::kDbts:
      case TrafficCategory::kDb: return -1;  // guaranteed: never shed
    }
    return -1;
  };

  while (!result.id) {
    // The most sheddable overlapping victim: lowest class rank, newest id.
    const Connection* victim = nullptr;
    int victim_rank = 0;
    for (const auto& [id, conn] : connections_) {
      if (!conn.live) continue;
      const int rank = shed_rank(conn.category);
      if (rank < 0) continue;
      const bool overlaps = std::any_of(
          conn.hops.begin(), conn.hops.end(), [&](const HopReservation& h) {
            return std::find(path.begin(), path.end(), h.port) != path.end();
          });
      if (!overlaps) continue;
      if (victim == nullptr || rank < victim_rank ||
          (rank == victim_rank && id > victim->id)) {
        victim = &conn;
        victim_rank = rank;
      }
    }
    if (victim == nullptr) break;  // nothing sheddable left: genuine refusal
    const auto victim_id = victim->id;
    release(victim_id);
    result.shed.push_back(victim_id);
    result.id = request(req);
  }
  return result;
}

void AdmissionControl::forget(ConnectionId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end())
    throw std::invalid_argument("forget: unknown connection");
  if (it->second.live)
    throw std::invalid_argument("forget: connection is still live");
  connections_.erase(it);
}

bool AdmissionControl::can_admit_path(const ConnectionRequest& req) const {
  const SlProfile* profile = find_sl(catalogue_, req.sl);
  if (profile == nullptr || profile->max_distance == 0)
    throw std::invalid_argument("SL is not a guaranteed-traffic class");
  if (cfg_.scheme == Scheme::kLegacy &&
      profile->category == TrafficCategory::kDb)
    return false;  // the low-table path has no Theorem-1 guarantee to audit

  const auto path = routes_.path(req.src_host, req.dst_host);
  for (const auto& port : path) {
    const auto it = managers_.find(port_key(port));
    if (it == managers_.end()) return false;
    const auto& manager = it->second;
    const auto requirement = arbtable::compute_requirement(
        req.wire_mbps, manager.config().link_data_mbps, req.max_distance);
    if (!requirement) return false;
    if (!manager.can_admit(profile->vl, *requirement, req.wire_mbps))
      return false;
  }
  return true;
}

std::uint64_t AdmissionControl::live_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [id, conn] : connections_)
    if (conn.live) ++n;
  return n;
}

void AdmissionControl::release(ConnectionId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end() || !it->second.live)
    throw std::invalid_argument("unknown or already-released connection");
  for (const auto& hop : it->second.hops) {
    auto& manager = manager_for(hop.port);
    if (hop.low_table) {
      manager.remove_low_weight(hop.vl, hop.requirement.total_weight,
                                hop.mbps);
    } else {
      manager.release(hop.handle, hop.requirement, hop.mbps);
    }
  }
  it->second.live = false;
  it->second.hops.clear();
}

void AdmissionControl::program(sim::Simulator& sim) const {
  for (const auto& [key, manager] : managers_) {
    const auto node = static_cast<iba::NodeId>(key / 256);
    const auto port = static_cast<iba::PortIndex>(key % 256);
    sim.set_output_arbitration(node, port, manager.table());
    sim.set_port_reserved_mbps(node, port, manager.reserved_mbps());
  }
}

bool AdmissionControl::check_all_invariants(std::string* why) const {
  for (const auto& [key, manager] : managers_)
    if (!manager.check_invariants(why)) return false;
  return true;
}

bool AdmissionControl::audit_tables(std::string* why) const {
  if (!check_all_invariants(why)) return false;
  for (const auto& [key, manager] : managers_) {
    if (!manager.table().cache_in_sync()) {
      if (why != nullptr)
        *why = "arbiter aggregate cache out of sync on port key " +
               std::to_string(key);
      return false;
    }
  }
  return true;
}

bool AdmissionControl::audit_full(std::string* why) const {
  if (!audit_tables(why)) return false;
  for (const auto& [key, manager] : managers_) {
    if (!manager.audit_free_set_optimality(why)) {
      if (why != nullptr)
        *why += " (port key " + std::to_string(key) + ")";
      return false;
    }
  }
  return true;
}

void AdmissionControl::attach_telemetry(obs::TelemetryRegistry& registry) {
  if (telemetry_attached_)
    throw std::logic_error("admission telemetry attached twice");
  telemetry_attached_ = true;
  registry.add_probe([this](obs::Snapshot& snap) {
    arbtable::TableManager::Stats sum;
    double reserved = 0.0;
    std::uint64_t live_seqs = 0;
    std::uint64_t free = 0;
    for (const auto& [key, manager] : managers_) {
      const auto& s = manager.stats();
      sum.allocations += s.allocations;
      sum.shares += s.shares;
      sum.reject_bandwidth += s.reject_bandwidth;
      sum.reject_entries += s.reject_entries;
      sum.releases += s.releases;
      sum.defrag_runs += s.defrag_runs;
      sum.defrag_moves += s.defrag_moves;
      reserved += manager.reserved_mbps();
      live_seqs += manager.live_sequences();
      free += manager.free_entries();
    }
    snap.add_counter("tm.allocations", sum.allocations);
    snap.add_counter("tm.shares", sum.shares);
    snap.add_counter("tm.reject_bandwidth", sum.reject_bandwidth);
    snap.add_counter("tm.reject_entries", sum.reject_entries);
    snap.add_counter("tm.releases", sum.releases);
    snap.add_counter("tm.defrag_runs", sum.defrag_runs);
    snap.add_counter("tm.defrag_moves", sum.defrag_moves);
    snap.add_counter("tm.accepted", accepted_);
    snap.add_counter("tm.rejected", rejected_);
    snap.merge_gauge("tm.live_sequences", static_cast<double>(live_seqs));
    snap.merge_gauge("tm.free_entries", static_cast<double>(free));
    snap.merge_gauge("tm.reserved_mbps", reserved);
  });
}

void AdmissionControl::save_state(util::BinWriter& w) const {
  w.put_u64(managers_.size());
  for (const auto& [key, manager] : managers_) {
    w.put_u64(key);
    manager.save_state(w);
  }
  w.put_u64(live_count());
  for (const auto& [id, conn] : connections_) {
    if (!conn.live) continue;
    w.put_u32(conn.id);
    w.put_u32(conn.request.src_host);
    w.put_u32(conn.request.dst_host);
    w.put_u8(conn.request.sl);
    w.put_u32(conn.request.max_distance);
    w.put_double(conn.request.wire_mbps);
    w.put_u64(conn.hops.size());
    for (const auto& hop : conn.hops) {
      w.put_u32(hop.port.node);
      w.put_u8(hop.port.port);
      w.put_u32(hop.handle);
      w.put_u32(hop.requirement.distance);
      w.put_u32(hop.requirement.entries);
      w.put_u32(hop.requirement.weight_per_entry);
      w.put_u32(hop.requirement.total_weight);
      w.put_double(hop.mbps);
      w.put_bool(hop.low_table);
      w.put_u8(hop.vl);
    }
    w.put_u64(conn.deadline);
    w.put_u8(static_cast<std::uint8_t>(conn.category));
  }
  w.put_u32(next_id_);
  w.put_u64(accepted_);
  w.put_u64(rejected_);
}

void AdmissionControl::load_state(util::BinReader& r) {
  const auto manager_count = r.get_u64();
  if (manager_count != managers_.size())
    throw std::runtime_error("snapshot port-manager count mismatch");
  for (std::uint64_t i = 0; i < manager_count; ++i) {
    const auto key = r.get_u64();
    const auto it = managers_.find(key);
    if (it == managers_.end())
      throw std::runtime_error("snapshot references an unwired port");
    it->second.load_state(r);
  }
  connections_.clear();
  const auto live = r.get_length();
  for (std::size_t i = 0; i < live; ++i) {
    Connection conn;
    conn.id = r.get_u32();
    conn.request.src_host = r.get_u32();
    conn.request.dst_host = r.get_u32();
    conn.request.sl = r.get_u8();
    conn.request.max_distance = r.get_u32();
    conn.request.wire_mbps = r.get_double();
    conn.hops.resize(r.get_length());
    for (auto& hop : conn.hops) {
      hop.port.node = r.get_u32();
      hop.port.port = r.get_u8();
      hop.handle = r.get_u32();
      hop.requirement.distance = r.get_u32();
      hop.requirement.entries = r.get_u32();
      hop.requirement.weight_per_entry = r.get_u32();
      hop.requirement.total_weight = r.get_u32();
      hop.mbps = r.get_double();
      hop.low_table = r.get_bool();
      hop.vl = r.get_u8();
    }
    conn.deadline = r.get_u64();
    conn.category = static_cast<TrafficCategory>(r.get_u8());
    conn.live = true;
    const auto id = conn.id;
    if (!connections_.emplace(id, std::move(conn)).second)
      throw std::runtime_error("snapshot has a duplicate connection id");
  }
  next_id_ = r.get_u32();
  accepted_ = r.get_u64();
  rejected_ = r.get_u64();
}

}  // namespace ibarb::qos
