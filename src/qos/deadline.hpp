// Deadline ↔ table-distance arithmetic (paper §3.2).
//
// A sequence whose entries sit at most `d` slots apart is served at least
// once per `d` consecutive table entries. Each entry can carry up to
// 255 × 64 bytes — plus one whole-packet overdraft, since IBA always rounds
// the last grant up to a full packet — so the worst-case service interval of
// the sequence (the per-switch latency the table guarantees) is
// d × (16320 + max_packet_wire − 64) bytes of link time. The end-to-end
// guarantee multiplies by the number of arbitration stages crossed and adds
// the per-hop forwarding costs (store-and-forward serialization, crossbar,
// propagation).
#pragma once

#include <cstdint>

#include "iba/types.hpp"

namespace ibarb::qos {

/// Wire size of the largest packet the paper's evaluation uses (4 KB MTU).
inline constexpr std::uint32_t kDefaultMaxWireBytes = 4096 + 26;

/// Pure arbitration quantum: cycles (1x link) for `distance` table entries
/// at full weight, ignoring packet-granularity overdraft.
constexpr iba::Cycle per_switch_deadline(unsigned distance) noexcept {
  return static_cast<iba::Cycle>(distance) * iba::kMaxEntryWeight *
         iba::kWeightUnitBytes;
}

/// Sound per-hop guarantee: arbitration interval with per-entry whole-packet
/// overdraft, plus the hop's forwarding costs.
constexpr iba::Cycle per_hop_guarantee(
    unsigned distance, std::uint32_t max_wire_bytes = kDefaultMaxWireBytes,
    iba::Cycle crossbar_delay = 8, iba::Cycle propagation = 2) noexcept {
  const iba::Cycle per_entry =
      iba::kMaxEntryWeight * iba::kWeightUnitBytes +
      (max_wire_bytes > iba::kWeightUnitBytes
           ? max_wire_bytes - iba::kWeightUnitBytes
           : 0);
  return static_cast<iba::Cycle>(distance) * per_entry +
         2 * static_cast<iba::Cycle>(max_wire_bytes) + crossbar_delay +
         propagation;
}

/// End-to-end deadline across `stages` arbitration stages (path port count:
/// the source host interface counts as one stage, each switch as one) using
/// the pure arbitration quantum.
constexpr iba::Cycle end_to_end_deadline(unsigned distance,
                                         unsigned stages) noexcept {
  return per_switch_deadline(distance) * stages;
}

/// End-to-end guarantee with the sound per-hop bound.
constexpr iba::Cycle end_to_end_guarantee(
    unsigned distance, unsigned stages,
    std::uint32_t max_wire_bytes = kDefaultMaxWireBytes) noexcept {
  return per_hop_guarantee(distance, max_wire_bytes) * stages;
}

/// Largest admissible distance (power of two, 2..64) whose per-switch
/// guarantee meets `deadline` cycles. Returns 0 when even distance 2 cannot
/// (the request is infeasible; distance 1 is excluded per §3.1).
unsigned distance_for_deadline(iba::Cycle deadline_per_switch) noexcept;

/// Same, from an end-to-end deadline and a stage count.
unsigned distance_for_e2e_deadline(iba::Cycle deadline, unsigned stages) noexcept;

}  // namespace ibarb::qos
