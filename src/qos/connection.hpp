// Connection objects: what an application requests and what admission
// control recorded when it said yes.
#pragma once

#include <cstdint>
#include <vector>

#include "arbtable/requirements.hpp"
#include "arbtable/table_manager.hpp"
#include "iba/types.hpp"
#include "network/graph.hpp"
#include "qos/traffic_classes.hpp"

namespace ibarb::qos {

using ConnectionId = std::uint32_t;

/// What the application asks for. Bandwidth is *wire-level* (payload plus
/// per-packet overhead) so that reservations cover everything the link must
/// actually move; traffic/workload.cpp does the payload↔wire conversion.
struct ConnectionRequest {
  iba::NodeId src_host = iba::kInvalidNode;
  iba::NodeId dst_host = iba::kInvalidNode;
  iba::ServiceLevel sl = 0;
  unsigned max_distance = 64;  ///< From the SL profile / deadline.
  double wire_mbps = 1.0;      ///< Mean bandwidth to reserve.
};

/// One per-hop reservation made on behalf of a connection.
struct HopReservation {
  network::PortRef port;       ///< The output port reserved on.
  arbtable::SeqHandle handle = 0;
  arbtable::Requirement requirement;
  double mbps = 0.0;
  bool low_table = false;      ///< Legacy scheme: DB weight in the low table.
  iba::VirtualLane vl = 0;
};

struct Connection {
  ConnectionId id = 0;
  ConnectionRequest request;
  std::vector<HopReservation> hops;  ///< In path order (source first).
  iba::Cycle deadline = 0;           ///< End-to-end guarantee, cycles.
  bool live = false;
  /// The SL's traffic class at admission time. Decides shedding priority
  /// under graceful degradation: CH/BE/PBE are sheddable, DBTS/DB never.
  TrafficCategory category = TrafficCategory::kDbts;
};

}  // namespace ibarb::qos
