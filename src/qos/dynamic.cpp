#include "qos/dynamic.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "traffic/cbr.hpp"

namespace ibarb::qos {

std::size_t DynamicScenario::add(ScheduledConnection sc) {
  if (sc.depart != iba::kNeverCycle && sc.depart <= sc.arrive)
    throw std::invalid_argument("departure must follow arrival");
  if (sc.arrive < sim_.now())
    throw std::invalid_argument("arrival time already passed");
  script_.push_back(std::move(sc));
  return script_.size() - 1;
}

void DynamicScenario::process(const PendingEvent& ev) {
  ScheduledConnection& sc = script_[ev.index];
  if (!ev.is_departure) {
    const auto id = admission_.request(sc.request);
    if (!id) {
      sc.state = ScheduledConnection::State::kRejected;
      ++rejected_;
      return;
    }
    sc.id = *id;
    sc.state = ScheduledConnection::State::kActive;
    ++admitted_;
    admission_.program(sim_);  // tables changed along the path
    auto spec = traffic::make_cbr_flow(
        sc.request.src_host, sc.request.dst_host, sc.request.sl,
        sc.payload_bytes, sc.request.wire_mbps,
        admission_.connection(*id).deadline,
        /*seed=*/0x5eed0000 + ev.index, sc.oversend_factor);
    spec.start_offset = sim_.now();
    sc.flow = sim_.add_flow(spec);
    return;
  }
  if (sc.state != ScheduledConnection::State::kActive) return;  // was refused
  admission_.release(*sc.id);
#ifndef NDEBUG
  {
    // Post-release audit: the defragmenter must have restored the entry-set
    // invariant and the cached arbiter aggregates must still cross-check.
    std::string why;
    assert(admission_.audit_tables(&why) && "post-release table audit");
  }
#endif
  admission_.program(sim_);  // defragmentation may have moved sequences
  sim_.stop_flow(*sc.flow);
  sc.state = ScheduledConnection::State::kDeparted;
  ++released_;
}

void DynamicScenario::run_until(iba::Cycle t) {
  // Gather outstanding script events up to t, time-ordered (stable on ties:
  // departures before arrivals at the same instant, freeing room first).
  std::vector<PendingEvent> events;
  for (std::size_t i = 0; i < script_.size(); ++i) {
    const auto& sc = script_[i];
    if (sc.state == ScheduledConnection::State::kPending &&
        sc.arrive <= t && sc.arrive >= sim_.now())
      events.push_back(PendingEvent{sc.arrive, i, false});
    if (sc.depart != iba::kNeverCycle && sc.depart <= t &&
        sc.depart >= sim_.now() &&
        (sc.state == ScheduledConnection::State::kPending ||
         sc.state == ScheduledConnection::State::kActive))
      events.push_back(PendingEvent{sc.depart, i, true});
  }
  std::sort(events.begin(), events.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.is_departure != b.is_departure) return a.is_departure;
              return a.index < b.index;
            });
  for (const auto& ev : events) {
    sim_.run_until(ev.time);
    process(ev);
  }
  sim_.run_until(t);
}

}  // namespace ibarb::qos
