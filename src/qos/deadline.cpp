#include "qos/deadline.hpp"

namespace ibarb::qos {

unsigned distance_for_deadline(iba::Cycle deadline_per_switch) noexcept {
  unsigned best = 0;
  for (unsigned d = 2; d <= 64; d *= 2)
    if (per_switch_deadline(d) <= deadline_per_switch) best = d;
  return best;
}

unsigned distance_for_e2e_deadline(iba::Cycle deadline,
                                   unsigned stages) noexcept {
  if (stages == 0) return 0;
  return distance_for_deadline(deadline / stages);
}

}  // namespace ibarb::qos
