// Path admission control: the paper's "global frame".
//
// "Each request is studied in each node in its path, and it is only accepted
// if there are available resources" (§4.2). For every output port along the
// route — the source host interface plus each switch output — the request is
// translated to table terms (arbtable::compute_requirement) and placed by
// the TableManager; any failure rolls the whole request back.
//
// Two schemes are supported:
//  * kNewProposal (the paper): every guaranteed connection — DBTS and DB —
//    lands in the high-priority table, classified by distance.
//  * kLegacy (prior work, experiment E5): DBTS in the high table, DB as
//    plain accumulated weight in the low-priority table, where misbehaving
//    high-priority sources can starve it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "arbtable/table_manager.hpp"
#include "network/graph.hpp"
#include "network/routing.hpp"
#include "obs/telemetry.hpp"
#include "qos/connection.hpp"
#include "qos/deadline.hpp"
#include "qos/traffic_classes.hpp"
#include "sim/simulator.hpp"
#include "util/binary.hpp"

namespace ibarb::qos {

enum class Scheme : std::uint8_t { kNewProposal, kLegacy };

class AdmissionControl {
 public:
  struct Config {
    arbtable::FillPolicy policy = arbtable::FillPolicy::kBitReversal;
    bool defrag_on_release = true;
    double reservable_fraction = 0.8;
    Scheme scheme = Scheme::kNewProposal;
    std::uint8_t limit_of_high_priority = iba::kUnlimitedHighPriority;
    /// Wire size of the largest packet in use: connection deadlines account
    /// for one whole-packet overdraft per arbitration entry (IBA rounds
    /// grants up to full packets).
    std::uint32_t max_packet_wire_bytes = kDefaultMaxWireBytes;
    std::uint64_t seed = 1;
  };

  AdmissionControl(const network::FabricGraph& graph,
                   const network::Routes& routes,
                   std::vector<SlProfile> catalogue, Config cfg);

  /// Tries to establish a connection. On success the reservation is placed
  /// on every output port of the path and the id is returned.
  std::optional<ConnectionId> request(const ConnectionRequest& req);

  /// Admits a best-effort connection (an SL whose profile has no distance
  /// guarantee): accumulated weight on the SL's VL in every hop's
  /// low-priority table, counted against the reservable-bandwidth cap.
  /// These are the connections graceful degradation sheds first.
  std::optional<ConnectionId> request_best_effort(const ConnectionRequest& req);

  struct DegradeResult {
    std::optional<ConnectionId> id;    ///< The admitted connection, if any.
    std::vector<ConnectionId> shed;    ///< Best-effort connections released
                                       ///< to make room (caller stops their
                                       ///< flows). Empty on a clean admit.
  };

  /// Graceful degradation: like request(), but when a guaranteed-class
  /// request fails for lack of capacity, sheds best-effort connections
  /// sharing a port with the path — CH first, then BE, then PBE, newest
  /// first — and retries. DBTS/DB connections are never shed, so a
  /// guaranteed request only fails once no sheddable capacity remains.
  DegradeResult request_degrading(const ConnectionRequest& req);

  /// Tears a connection down, freeing (and defragmenting) each hop's table.
  void release(ConnectionId id);

  /// Erases the bookkeeping record of an already-released connection, so a
  /// long-running churn service stays memory-bounded. Throws if the
  /// connection is still live (release first) or unknown.
  void forget(ConnectionId id);

  /// Dry-run of request() for a guaranteed-class request: true when every
  /// output port along the path reports TableManager::can_admit. Pure — no
  /// state or RNG is touched. A request() refusal while this holds is a
  /// Theorem-1 false reject; the churn engine audits exactly that.
  bool can_admit_path(const ConnectionRequest& req) const;

  const Connection& connection(ConnectionId id) const {
    return connections_.at(id);
  }
  bool is_live(ConnectionId id) const {
    const auto it = connections_.find(id);
    return it != connections_.end() && it->second.live;
  }

  /// Programs every port's VLArbitrationTable and reservation annotation
  /// into the simulator. Call after establishing connections (or again
  /// after any change).
  void program(sim::Simulator& sim) const;

  const arbtable::TableManager& port_manager(iba::NodeId node,
                                             iba::PortIndex port) const;

  const std::vector<SlProfile>& catalogue() const noexcept {
    return catalogue_;
  }

  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t live_count() const noexcept;

  /// Registers a pull-probe publishing the aggregated per-port
  /// TableManager::Stats as the "tm.*" counter/gauge family. The registry
  /// must die before this AdmissionControl (the usual declaration order —
  /// admission before simulator — guarantees it); the probe is never
  /// detached. At most one registry may be attached.
  void attach_telemetry(obs::TelemetryRegistry& registry);

  /// Serializes every port manager plus the live connection records and the
  /// accept/reject accounting. Released-and-forgotten records are not
  /// written: they carry no admission state.
  void save_state(util::BinWriter& w) const;

  /// Restores state saved by save_state() into an AdmissionControl built
  /// over the same graph, routes, catalogue and Config. Existing connection
  /// records are discarded. Does NOT program any simulator — callers run
  /// configure_fabric/program afterwards. Throws std::runtime_error on
  /// mismatched topology or config fingerprints.
  void load_state(util::BinReader& r);

  /// Consistency audit over every port manager (tests).
  bool check_all_invariants(std::string* why = nullptr) const;

  /// Deeper debug audit: check_all_invariants plus the cached arbiter
  /// aggregate cross-check (VlArbitrationTable::cache_in_sync) on every
  /// port table. Debug builds run this after every fault-driven or
  /// dynamic-scenario release.
  bool audit_tables(std::string* why = nullptr) const;

  /// The churn-service audit: audit_tables plus the Theorem-1 free-set
  /// optimality check (TableManager::audit_free_set_optimality) on every
  /// port. Run after every restore and every batch of churn.
  bool audit_full(std::string* why = nullptr) const;

 private:
  arbtable::TableManager& manager_for(const network::PortRef& port);

  const network::FabricGraph& graph_;
  const network::Routes& routes_;
  std::vector<SlProfile> catalogue_;
  Config cfg_;

  /// Key: node * 256 + port.
  std::map<std::uint64_t, arbtable::TableManager> managers_;
  std::map<ConnectionId, Connection> connections_;
  ConnectionId next_id_ = 1;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  bool telemetry_attached_ = false;
};

}  // namespace ibarb::qos
