// Traffic categories and the Service-Level catalogue (paper §3.1–3.2,
// Table 1).
//
// Pelissier's four categories — DBTS (dedicated bandwidth, time sensitive),
// DB (dedicated bandwidth), BE (best effort) and CH (challenged) — extended
// with PBE (preferential best effort) as in the authors' earlier work. The
// paper's proposal: classify all *guaranteed* traffic (DBTS and DB) by
// maximum latency, i.e. by the maximum distance between consecutive entries
// of its sequence in the high-priority table, subdividing the most used
// distances (32, 64) by mean bandwidth. Every SL gets its own VL where the
// fabric has enough lanes.
//
// The exact bandwidth ranges of Table 1 are illegible in the available scan;
// DESIGN.md documents the reconstruction below (distances and the 2/4-way
// bandwidth split for distances 32/64 are the paper's).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "iba/types.hpp"

namespace ibarb::qos {

enum class TrafficCategory : std::uint8_t {
  kDbts,  ///< Dedicated bandwidth, time sensitive — latency + bandwidth.
  kDb,    ///< Dedicated bandwidth only (a DBTS with a huge deadline).
  kPbe,   ///< Preferential best effort (web / database front-ends).
  kBe,    ///< Best effort (mail, ftp, ...).
  kCh,    ///< Challenged: may be dropped/starved first.
};

const char* to_string(TrafficCategory c);

struct SlProfile {
  iba::ServiceLevel sl = 0;
  iba::VirtualLane vl = 0;        ///< Dedicated VL (SL == VL in the paper).
  TrafficCategory category = TrafficCategory::kDbts;
  unsigned max_distance = 64;     ///< 0 for best-effort (no guarantee).
  double min_mbps = 0.0;          ///< Connection mean-bandwidth range.
  double max_mbps = 0.0;
};

/// The paper's Table 1: ten QoS SLs (0..9), distances
/// {2,4,8,16,32,32,64,64,64,64}, plus PBE/BE/CH best-effort classes on
/// SLs 10..12 served by the low-priority table.
std::vector<SlProfile> paper_catalogue();

/// Picks the SL a new connection should use: the profile whose distance
/// guarantees `required_distance` (largest admissible) and whose bandwidth
/// range contains `mbps`; falls back to the nearest bandwidth range at the
/// right distance. Returns nullptr when no QoS SL can serve the distance.
const SlProfile* pick_sl(const std::vector<SlProfile>& catalogue,
                         unsigned required_distance, double mbps);

const SlProfile* find_sl(const std::vector<SlProfile>& catalogue,
                         iba::ServiceLevel sl);

/// Static low-priority table content for the best-effort classes: one entry
/// per BE-family VL, weighted PBE > BE > CH (server-room defaults; the 20 %
/// unreserved bandwidth is shared in this proportion).
std::vector<std::pair<iba::VirtualLane, std::uint8_t>> low_priority_config(
    const std::vector<SlProfile>& catalogue);

}  // namespace ibarb::qos
