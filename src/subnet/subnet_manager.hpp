// Subnet manager: the configuration plane of the paper's "global frame".
//
// A real IBA subnet manager sweeps the fabric with directed-route SMPs,
// assigns LIDs, and programs forwarding tables, SLtoVL maps and the
// VLArbitrationTables of every port. This class performs those steps
// against the model: discovery really is conducted by Get(NodeInfo)
// directed-route MADs walked hop by hop (subnet/mad.hpp), LIDs are assigned
// (host LID = node id + 1, the convention the simulator's data path uses),
// up*/down* routes are computed, and configure_fabric() programs a
// simulator in one call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iba/sl_to_vl.hpp"
#include "network/graph.hpp"
#include "network/routing.hpp"
#include "qos/admission.hpp"
#include "sim/simulator.hpp"
#include "subnet/mad.hpp"

namespace ibarb::subnet {

struct DiscoveryReport {
  unsigned switches = 0;
  unsigned hosts = 0;
  unsigned links = 0;          ///< Undirected wired links found.
  unsigned smps_sent = 0;      ///< Directed-route probes issued.
  unsigned sweep_hops = 0;     ///< Total hops those probes walked.
  bool complete = false;       ///< Every node of the fabric was reached.
};

/// Outcome of a fault-triggered re-sweep (see SubnetManager::resweep).
struct ResweepReport {
  unsigned smps_sent = 0;       ///< Directed-route probes of this sweep.
  unsigned sweep_hops = 0;
  unsigned links_down = 0;      ///< Links excluded by the health mask.
  bool complete = false;        ///< Sweep still reached every node.
  /// New up*/down* routes were computed and the LFTs reprogrammed. False
  /// when the degraded fabric is partitioned or unroutable — the old
  /// forwarding state is then left untouched (fail-static).
  bool routes_changed = false;
};

class SubnetManager {
 public:
  /// Sweeps and routes the fabric. `routing_engine` names the registered
  /// engine (network/routing_engine.hpp) used to fill the forwarding
  /// tables; the default is the paper's up*/down* pass.
  explicit SubnetManager(const network::FabricGraph& graph,
                         std::string routing_engine = "updown");

  const DiscoveryReport& discovery() const noexcept { return report_; }
  const network::Routes& routes() const noexcept { return routes_; }

  /// The engine currently routing the fabric. May differ from the
  /// constructor argument after a fault re-sweep: structure-aware engines
  /// refuse degraded topologies (a holey torus has no safe dimension
  /// order), and the manager then falls back to `updown`.
  const std::string& routing_engine() const noexcept { return engine_; }

  iba::Lid lid(iba::NodeId node) const {
    return static_cast<iba::Lid>(node + 1);
  }

  /// Nodes in the order the discovery sweep reached them.
  const std::vector<iba::NodeId>& sweep_order() const noexcept {
    return sweep_order_;
  }

  /// The directed-route port list the sweep recorded for a node (empty for
  /// the origin). Replaying it through a DirectedRouteWalker reaches the
  /// node — tests rely on this.
  const std::vector<std::uint8_t>& dr_path(iba::NodeId node) const {
    return dr_paths_.at(node);
  }

  /// Programs SLtoVL maps on every port (identity over the data VLs) and
  /// the arbitration tables + reservation annotations held by `admission`.
  void configure_fabric(sim::Simulator& sim,
                        const qos::AdmissionControl& admission) const;

  /// Reaction to a link-state trap: re-sweeps the fabric with the given
  /// ports (and their link partners) masked out, recomputes routes on the
  /// degraded topology (falling back to `updown` when the configured
  /// structure-aware engine refuses the now-irregular wiring), and
  /// reprograms every switch LFT through wire MADs. With an empty mask
  /// this restores the full-fabric routes (repair path). On
  /// partition/unroutability the previous routes stay installed and
  /// routes_changed is false.
  ResweepReport resweep(sim::Simulator& sim,
                        const std::vector<network::PortRef>& down_ports);

  /// Human-readable fabric summary (example binaries print it).
  std::string describe() const;

 private:
  DiscoveryReport discover(const network::FabricGraph& topology,
                           std::vector<iba::NodeId>& order,
                           std::vector<std::vector<std::uint8_t>>& paths);
  void program_forwarding(sim::Simulator& sim) const;

  const network::FabricGraph& graph_;
  std::string engine_;
  DiscoveryReport report_;
  std::vector<iba::NodeId> sweep_order_;
  std::vector<std::vector<std::uint8_t>> dr_paths_;
  network::Routes routes_;
  /// The degraded-topology copy the current routes_ were computed on (the
  /// Routes object keeps a pointer into its source graph). Null while the
  /// routes are the pristine full-fabric ones.
  std::unique_ptr<network::FabricGraph> filtered_;
};

}  // namespace ibarb::subnet
