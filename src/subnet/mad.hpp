// Subnet Management Packets (IBA 1.0 §14): the 256-byte MADs a subnet
// manager exchanges with switches and channel adapters over VL15, here in
// their directed-route form (routing by explicit port lists, which is how a
// subnet is discovered before forwarding tables exist).
//
// The model keeps the real structure — method, attribute, hop pointer/count,
// initial path, 64-byte attribute payload — with simplified attribute
// encodings documented per attribute.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include <vector>

#include "iba/types.hpp"
#include "iba/vl_arbitration.hpp"
#include "network/graph.hpp"

namespace ibarb::subnet {

inline constexpr std::size_t kMadBytes = 256;
inline constexpr std::size_t kSmpPayloadBytes = 64;
inline constexpr std::size_t kMaxDrHops = 64;

enum class MadMethod : std::uint8_t {
  kGet = 0x01,
  kSet = 0x02,
  kGetResp = 0x81,
};

enum class SmpAttribute : std::uint16_t {
  kNodeInfo = 0x0011,
  kPortInfo = 0x0015,
  kSlToVlTable = 0x0017,
  kVlArbitrationTable = 0x0018,
  kLinearForwardingTable = 0x0019,
};

/// A directed-route SMP. `initial_path[1..hop_count]` are the egress ports
/// to take (entry 0 unused, as in the spec); `hop_pointer` advances as the
/// packet walks the fabric.
struct DrSmp {
  MadMethod method = MadMethod::kGet;
  SmpAttribute attribute = SmpAttribute::kNodeInfo;
  std::uint32_t attribute_modifier = 0;
  std::uint64_t transaction_id = 0;
  std::uint8_t hop_count = 0;
  std::uint8_t hop_pointer = 0;
  std::array<std::uint8_t, kMaxDrHops> initial_path{};
  std::array<std::uint8_t, kSmpPayloadBytes> payload{};

  friend bool operator==(const DrSmp&, const DrSmp&) = default;
};

/// Wire encode/decode (fixed 256-byte MAD; reserved space zero-filled).
std::array<std::uint8_t, kMadBytes> encode(const DrSmp& smp);
std::optional<DrSmp> decode_smp(std::span<const std::uint8_t> bytes);

/// NodeInfo attribute payload (simplified encoding: kind, port count,
/// node guid = graph node id).
struct NodeInfo {
  bool is_switch = false;
  std::uint8_t ports = 0;
  std::uint32_t node_guid = 0;
};
void write_node_info(const NodeInfo& info,
                     std::span<std::uint8_t, kSmpPayloadBytes> payload);
NodeInfo read_node_info(std::span<const std::uint8_t, kSmpPayloadBytes> payload);

// --- Attribute codecs ------------------------------------------------------
//
// LinearForwardingTable: each SMP block carries 64 bytes = the egress ports
// of 64 consecutive LIDs; attribute_modifier selects the block, exactly as
// in IBA §14.2.5.6.
inline constexpr std::size_t kLftLidsPerBlock = 64;

void write_lft_block(std::span<const iba::PortIndex> ports_for_block,
                     std::span<std::uint8_t, kSmpPayloadBytes> payload);
std::array<iba::PortIndex, kLftLidsPerBlock> read_lft_block(
    std::span<const std::uint8_t, kSmpPayloadBytes> payload);

// VLArbitrationTable: 32 {VL, weight} entry pairs per block (64 bytes);
// attribute_modifier 1/2 = low-priority lower/upper halves, 3/4 = high
// (IBA §14.2.5.9's block numbering).
inline constexpr std::size_t kVlArbEntriesPerBlock = 32;

void write_vlarb_block(const iba::ArbTable& table, unsigned half,
                       std::span<std::uint8_t, kSmpPayloadBytes> payload);
void read_vlarb_block(std::span<const std::uint8_t, kSmpPayloadBytes> payload,
                      unsigned half, iba::ArbTable& table);

/// All four Set(VLArbitrationTable) SMPs needed to program one port.
std::vector<DrSmp> vlarb_program_smps(const iba::VlArbitrationTable& table);

/// Reassembles a VLArbitrationTable from its four programming SMPs (any
/// order); returns std::nullopt if blocks are missing or malformed.
std::optional<iba::VlArbitrationTable> vlarb_from_smps(
    std::span<const DrSmp> smps);

/// Walks a directed-route SMP from `origin` over the fabric, advancing the
/// hop pointer exactly as a compliant SMA would, and returns the node the
/// request reaches (std::nullopt if the path names an unwired port). The
/// reached node "answers" Get(NodeInfo) by filling the payload.
class DirectedRouteWalker {
 public:
  explicit DirectedRouteWalker(const network::FabricGraph& graph)
      : graph_(graph) {}

  /// Delivers the SMP; on success returns the responding node and, for
  /// Get(NodeInfo), rewrites smp into the GetResp with the payload filled.
  std::optional<iba::NodeId> deliver(iba::NodeId origin, DrSmp& smp) const;

  std::uint64_t smps_delivered() const noexcept { return delivered_; }
  std::uint64_t hops_walked() const noexcept { return hops_; }

 private:
  const network::FabricGraph& graph_;
  mutable std::uint64_t delivered_ = 0;
  mutable std::uint64_t hops_ = 0;
};

}  // namespace ibarb::subnet
