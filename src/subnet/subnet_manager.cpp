#include "subnet/subnet_manager.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace ibarb::subnet {

namespace {

DrSmp node_info_probe(const std::vector<std::uint8_t>& path,
                      std::uint64_t tid) {
  DrSmp smp;
  smp.method = MadMethod::kGet;
  smp.attribute = SmpAttribute::kNodeInfo;
  smp.transaction_id = tid;
  smp.hop_count = static_cast<std::uint8_t>(path.size());
  for (std::size_t k = 0; k < path.size(); ++k)
    smp.initial_path[k + 1] = path[k];
  return smp;
}

}  // namespace

DiscoveryReport SubnetManager::discover(
    const network::FabricGraph& topology, std::vector<iba::NodeId>& order,
    std::vector<std::vector<std::uint8_t>>& paths) {
  DiscoveryReport report;
  order.clear();
  paths.assign(topology.node_count(), {});
  if (topology.node_count() == 0) {
    report.complete = true;
    return report;
  }

  // Discovery: BFS conducted entirely through directed-route Get(NodeInfo)
  // SMPs. We start at node 0 (where the SM "runs") and extend every known
  // node's path by one egress port at a time; a probe that times out
  // (unwired port — or, on a re-sweep, a port behind a dead link) is simply
  // dropped, as on a real fabric.
  DirectedRouteWalker walker(topology);
  std::vector<bool> seen(topology.node_count(), false);
  std::uint64_t tid = 1;

  const auto probe = [&](const std::vector<std::uint8_t>& path)
      -> std::optional<NodeInfo> {
    DrSmp smp = node_info_probe(path, tid++);
    ++report.smps_sent;
    // Encode/decode round trip: the SM talks wire MADs, not structs.
    const auto wire = encode(smp);
    auto parsed = decode_smp(wire);
    assert(parsed.has_value());
    if (!walker.deliver(0, *parsed)) return std::nullopt;
    if (parsed->method != MadMethod::kGetResp) return std::nullopt;
    return read_node_info(
        std::span<const std::uint8_t, kSmpPayloadBytes>(
            parsed->payload.data(), kSmpPayloadBytes));
  };

  std::queue<iba::NodeId> frontier;
  const auto origin_info = probe({});
  assert(origin_info.has_value());
  seen[origin_info->node_guid] = true;
  frontier.push(origin_info->node_guid);

  while (!frontier.empty()) {
    const auto at = frontier.front();
    frontier.pop();
    order.push_back(at);
    if (topology.is_switch(at)) {
      ++report.switches;
    } else {
      ++report.hosts;
    }
    const auto& base_path = paths[at];
    if (base_path.size() + 1 >= kMaxDrHops) continue;  // DR depth limit
    for (unsigned p = 0; p < topology.port_count(at); ++p) {
      auto path = base_path;
      path.push_back(static_cast<std::uint8_t>(p));
      const auto info = probe(path);
      if (!info) continue;  // unwired port: probe timed out
      ++report.links;       // counted once per direction; halved below
      if (!seen[info->node_guid]) {
        seen[info->node_guid] = true;
        paths[info->node_guid] = std::move(path);
        frontier.push(info->node_guid);
      }
    }
  }
  report.links /= 2;  // every cable was probed from both ends
  report.sweep_hops = static_cast<unsigned>(walker.hops_walked());
  report.complete = order.size() == topology.node_count();
  return report;
}

SubnetManager::SubnetManager(const network::FabricGraph& graph,
                             std::string routing_engine)
    : graph_(graph), engine_(std::move(routing_engine)) {
  report_ = discover(graph_, sweep_order_, dr_paths_);
  if (graph_.node_count() == 0) return;
  routes_ = network::compute_routes(graph_, engine_);
}

ResweepReport SubnetManager::resweep(
    sim::Simulator& sim, const std::vector<network::PortRef>& down_ports) {
  ResweepReport out;

  // Rebuild the fabric as the traps describe it: same nodes in the same
  // order (so node ids and LIDs are stable), minus every link with a downed
  // endpoint. The copy must outlive the Routes computed on it.
  auto degraded = std::make_unique<network::FabricGraph>();
  for (iba::NodeId id = 0; id < graph_.node_count(); ++id) {
    if (graph_.is_switch(id)) {
      degraded->add_switch(graph_.port_count(id));
    } else {
      degraded->add_host();
    }
  }
  const auto is_down = [&](iba::NodeId n, iba::PortIndex p) {
    return std::find(down_ports.begin(), down_ports.end(),
                     network::PortRef{n, p}) != down_ports.end();
  };
  for (iba::NodeId id = 0; id < graph_.node_count(); ++id) {
    for (unsigned p = 0; p < graph_.port_count(id); ++p) {
      const auto port = static_cast<iba::PortIndex>(p);
      const auto peer = graph_.peer(id, port);
      if (!peer) continue;
      // Each cable once (canonical end).
      if (peer->node < id || (peer->node == id && peer->port <= port))
        continue;
      if (is_down(id, port) || is_down(peer->node, peer->port)) {
        ++out.links_down;
        continue;
      }
      degraded->connect(id, port, peer->node, peer->port,
                        graph_.link(id, port));
    }
  }

  // Re-sweep with real directed-route SMPs over the degraded topology.
  std::vector<iba::NodeId> order;
  std::vector<std::vector<std::uint8_t>> paths;
  const auto report = discover(*degraded, order, paths);
  out.smps_sent = report.smps_sent;
  out.sweep_hops = report.sweep_hops;
  out.complete = report.complete;
  if (!out.complete) return out;  // partitioned: fail-static

  // The degraded copy deliberately carries no topology hint: a torus with a
  // dead ring link is not a torus, and a structure-aware engine routing it
  // as one would blackhole traffic. Such engines throw; fall back to the
  // always-applicable up*/down* pass before giving up (fail-static).
  network::Routes routes;
  std::string engine = engine_;
  bool routed = false;
  try {
    routes = network::compute_routes(*degraded, engine);
    routed = true;
  } catch (const std::runtime_error&) {
  }
  if (!routed && engine != "updown") {
    engine = "updown";
    try {
      routes = network::compute_routes(*degraded, engine);
      routed = true;
    } catch (const std::runtime_error&) {
    }
  }
  if (!routed) return out;  // no legal assignment at all: keep old routes

  engine_ = std::move(engine);
  report_ = report;
  sweep_order_ = std::move(order);
  dr_paths_ = std::move(paths);
  routes_ = std::move(routes);
  filtered_ = std::move(degraded);  // routes_ points into this graph
  program_forwarding(sim);
  out.routes_changed = true;
  return out;
}

void SubnetManager::configure_fabric(
    sim::Simulator& sim, const qos::AdmissionControl& admission) const {
  sim.set_sl_to_vl_all(iba::SlToVlMappingTable::identity(iba::kManagementVl));
  admission.program(sim);
  program_forwarding(sim);
}

void SubnetManager::program_forwarding(sim::Simulator& sim) const {
  // Program every switch's linear forwarding table, going through the wire
  // representation (Set(LinearForwardingTable) MAD blocks) exactly as a real
  // SM would: build blocks, encode, decode, apply.
  const auto hosts = graph_.hosts();
  const std::size_t lids = graph_.node_count() + 1;  // LID = node id + 1
  for (const auto sw : graph_.switches()) {
    std::vector<iba::PortIndex> lft(lids, 0xFF);
    for (const auto h : hosts) lft[lid(h)] = routes_.out_port(sw, h);

    std::vector<iba::PortIndex> assembled(lids, 0xFF);
    const auto blocks = (lids + kLftLidsPerBlock - 1) / kLftLidsPerBlock;
    for (std::size_t b = 0; b < blocks; ++b) {
      DrSmp smp;
      smp.method = MadMethod::kSet;
      smp.attribute = SmpAttribute::kLinearForwardingTable;
      smp.attribute_modifier = static_cast<std::uint32_t>(b);
      const auto base = b * kLftLidsPerBlock;
      const auto count = std::min(kLftLidsPerBlock, lids - base);
      write_lft_block(std::span<const iba::PortIndex>(&lft[base], count),
                      std::span<std::uint8_t, kSmpPayloadBytes>(
                          smp.payload.data(), kSmpPayloadBytes));
      const auto wire = encode(smp);
      const auto parsed = decode_smp(wire);
      assert(parsed.has_value());
      const auto block = read_lft_block(
          std::span<const std::uint8_t, kSmpPayloadBytes>(
              parsed->payload.data(), kSmpPayloadBytes));
      for (std::size_t i = 0; i < count; ++i)
        assembled[base + i] = block[i];
    }
    sim.set_forwarding(sw, std::move(assembled));
  }
}

std::string SubnetManager::describe() const {
  std::ostringstream os;
  os << "subnet: " << report_.switches << " switches, " << report_.hosts
     << " hosts, " << report_.links << " links; discovery "
     << (report_.complete ? "complete" : "INCOMPLETE") << " with "
     << report_.smps_sent << " directed-route SMPs (" << report_.sweep_hops
     << " hops walked)\n";
  if (engine_ == "updown") {
    os << "up*/down* root: switch " << routes_.root() << "\n";
  } else {
    os << "routing engine: " << engine_ << " ("
       << routes_.vl_layers() << " VL layer"
       << (routes_.vl_layers() == 1 ? "" : "s") << ", "
       << routes_.table_bytes() << " table bytes)\n";
  }
  os << "host LIDs: ";
  bool first = true;
  for (const auto h : graph_.hosts()) {
    if (!first) os << ", ";
    first = false;
    os << h << "->" << lid(h);
  }
  os << "\n";
  return os.str();
}

}  // namespace ibarb::subnet
