#include "subnet/mad.hpp"

#include <cstring>

namespace ibarb::subnet {

namespace {

// Byte layout inside the 256-byte MAD (a compact but faithful subset of the
// common MAD header + DR fields):
//   [0]   base version (1)
//   [1]   mgmt class (0x81 = directed-route SM)
//   [2]   class version (1)
//   [3]   method
//   [4,5] status (0)
//   [6]   hop pointer
//   [7]   hop count
//   [8..15]  transaction id (big endian)
//   [16,17]  attribute id (big endian)
//   [20..23] attribute modifier (big endian)
//   [64..127]  attribute payload (64 B)
//   [128..191] initial path (64 B)
constexpr std::uint8_t kBaseVersion = 1;
constexpr std::uint8_t kDrSmClass = 0x81;
constexpr std::uint8_t kClassVersion = 1;

}  // namespace

std::array<std::uint8_t, kMadBytes> encode(const DrSmp& smp) {
  std::array<std::uint8_t, kMadBytes> out{};
  out[0] = kBaseVersion;
  out[1] = kDrSmClass;
  out[2] = kClassVersion;
  out[3] = static_cast<std::uint8_t>(smp.method);
  out[6] = smp.hop_pointer;
  out[7] = smp.hop_count;
  for (int i = 0; i < 8; ++i)
    out[8 + i] = static_cast<std::uint8_t>(smp.transaction_id >> (56 - 8 * i));
  const auto attr = static_cast<std::uint16_t>(smp.attribute);
  out[16] = static_cast<std::uint8_t>(attr >> 8);
  out[17] = static_cast<std::uint8_t>(attr);
  for (int i = 0; i < 4; ++i)
    out[20 + i] =
        static_cast<std::uint8_t>(smp.attribute_modifier >> (24 - 8 * i));
  std::memcpy(&out[64], smp.payload.data(), kSmpPayloadBytes);
  std::memcpy(&out[128], smp.initial_path.data(), kMaxDrHops);
  return out;
}

std::optional<DrSmp> decode_smp(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kMadBytes) return std::nullopt;
  if (bytes[0] != kBaseVersion || bytes[1] != kDrSmClass ||
      bytes[2] != kClassVersion)
    return std::nullopt;
  DrSmp smp;
  switch (bytes[3]) {
    case 0x01: smp.method = MadMethod::kGet; break;
    case 0x02: smp.method = MadMethod::kSet; break;
    case 0x81: smp.method = MadMethod::kGetResp; break;
    default: return std::nullopt;
  }
  if (bytes[4] != 0 || bytes[5] != 0) return std::nullopt;  // status
  smp.hop_pointer = bytes[6];
  smp.hop_count = bytes[7];
  if (smp.hop_count >= kMaxDrHops) return std::nullopt;
  for (int i = 0; i < 8; ++i)
    smp.transaction_id = (smp.transaction_id << 8) | bytes[8 + i];
  const auto attr = static_cast<std::uint16_t>((bytes[16] << 8) | bytes[17]);
  switch (attr) {
    case 0x0011: smp.attribute = SmpAttribute::kNodeInfo; break;
    case 0x0015: smp.attribute = SmpAttribute::kPortInfo; break;
    case 0x0017: smp.attribute = SmpAttribute::kSlToVlTable; break;
    case 0x0018: smp.attribute = SmpAttribute::kVlArbitrationTable; break;
    case 0x0019: smp.attribute = SmpAttribute::kLinearForwardingTable; break;
    default: return std::nullopt;
  }
  for (int i = 0; i < 4; ++i)
    smp.attribute_modifier = (smp.attribute_modifier << 8) | bytes[20 + i];
  std::memcpy(smp.payload.data(), &bytes[64], kSmpPayloadBytes);
  std::memcpy(smp.initial_path.data(), &bytes[128], kMaxDrHops);
  return smp;
}

void write_node_info(const NodeInfo& info,
                     std::span<std::uint8_t, kSmpPayloadBytes> payload) {
  payload[0] = info.is_switch ? 2 : 1;  // IBA NodeType: 1 = CA, 2 = switch
  payload[1] = info.ports;
  for (int i = 0; i < 4; ++i)
    payload[2 + i] = static_cast<std::uint8_t>(info.node_guid >> (24 - 8 * i));
}

NodeInfo read_node_info(
    std::span<const std::uint8_t, kSmpPayloadBytes> payload) {
  NodeInfo info;
  info.is_switch = payload[0] == 2;
  info.ports = payload[1];
  for (int i = 0; i < 4; ++i)
    info.node_guid = (info.node_guid << 8) | payload[2 + i];
  return info;
}

std::optional<iba::NodeId> DirectedRouteWalker::deliver(iba::NodeId origin,
                                                        DrSmp& smp) const {
  iba::NodeId at = origin;
  // Spec semantics: hop_pointer runs 1..hop_count; initial_path[k] is the
  // egress port taken at the k-th device.
  for (smp.hop_pointer = 1; smp.hop_pointer <= smp.hop_count;
       ++smp.hop_pointer) {
    const auto port = smp.initial_path[smp.hop_pointer];
    if (port >= graph_.port_count(at)) return std::nullopt;
    const auto peer = graph_.peer(at, static_cast<iba::PortIndex>(port));
    if (!peer) return std::nullopt;
    at = peer->node;
    ++hops_;
  }
  ++delivered_;

  if (smp.method == MadMethod::kGet &&
      smp.attribute == SmpAttribute::kNodeInfo) {
    NodeInfo info;
    info.is_switch = graph_.is_switch(at);
    info.ports = static_cast<std::uint8_t>(graph_.port_count(at));
    info.node_guid = at;
    write_node_info(info, std::span<std::uint8_t, kSmpPayloadBytes>(
                              smp.payload.data(), kSmpPayloadBytes));
    smp.method = MadMethod::kGetResp;
  }
  return at;
}

}  // namespace ibarb::subnet

namespace ibarb::subnet {

void write_lft_block(std::span<const iba::PortIndex> ports_for_block,
                     std::span<std::uint8_t, kSmpPayloadBytes> payload) {
  for (std::size_t i = 0; i < kLftLidsPerBlock; ++i)
    payload[i] = i < ports_for_block.size() ? ports_for_block[i] : 0xFF;
}

std::array<iba::PortIndex, kLftLidsPerBlock> read_lft_block(
    std::span<const std::uint8_t, kSmpPayloadBytes> payload) {
  std::array<iba::PortIndex, kLftLidsPerBlock> out{};
  for (std::size_t i = 0; i < kLftLidsPerBlock; ++i)
    out[i] = payload[i];
  return out;
}

void write_vlarb_block(const iba::ArbTable& table, unsigned half,
                       std::span<std::uint8_t, kSmpPayloadBytes> payload) {
  const std::size_t base = half == 0 ? 0 : kVlArbEntriesPerBlock;
  for (std::size_t i = 0; i < kVlArbEntriesPerBlock; ++i) {
    payload[2 * i] = table[base + i].vl;
    payload[2 * i + 1] = table[base + i].weight;
  }
}

void read_vlarb_block(std::span<const std::uint8_t, kSmpPayloadBytes> payload,
                      unsigned half, iba::ArbTable& table) {
  const std::size_t base = half == 0 ? 0 : kVlArbEntriesPerBlock;
  for (std::size_t i = 0; i < kVlArbEntriesPerBlock; ++i) {
    table[base + i].vl = payload[2 * i];
    table[base + i].weight = payload[2 * i + 1];
  }
}

std::vector<DrSmp> vlarb_program_smps(const iba::VlArbitrationTable& table) {
  std::vector<DrSmp> out;
  for (unsigned block = 1; block <= 4; ++block) {
    DrSmp smp;
    smp.method = MadMethod::kSet;
    smp.attribute = SmpAttribute::kVlArbitrationTable;
    smp.attribute_modifier = block;
    const bool high = block >= 3;
    const unsigned half = (block - 1) % 2;
    write_vlarb_block(high ? table.high() : table.low(), half,
                      std::span<std::uint8_t, kSmpPayloadBytes>(
                          smp.payload.data(), kSmpPayloadBytes));
    out.push_back(smp);
  }
  return out;
}

std::optional<iba::VlArbitrationTable> vlarb_from_smps(
    std::span<const DrSmp> smps) {
  iba::VlArbitrationTable table;
  bool seen[5] = {};
  for (const auto& smp : smps) {
    if (smp.attribute != SmpAttribute::kVlArbitrationTable)
      return std::nullopt;
    if (smp.attribute_modifier < 1 || smp.attribute_modifier > 4)
      return std::nullopt;
    const bool high = smp.attribute_modifier >= 3;
    const unsigned half = (smp.attribute_modifier - 1) % 2;
    read_vlarb_block(std::span<const std::uint8_t, kSmpPayloadBytes>(
                         smp.payload.data(), kSmpPayloadBytes),
                     half, high ? table.high() : table.low());
    seen[smp.attribute_modifier] = true;
  }
  for (int b = 1; b <= 4; ++b)
    if (!seen[b]) return std::nullopt;
  return table;
}

}  // namespace ibarb::subnet
