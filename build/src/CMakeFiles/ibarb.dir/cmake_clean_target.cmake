file(REMOVE_RECURSE
  "libibarb.a"
)
