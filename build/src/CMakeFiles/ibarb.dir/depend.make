# Empty dependencies file for ibarb.
# This may be replaced when dependencies are built.
