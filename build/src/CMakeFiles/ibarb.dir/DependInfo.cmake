
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arbtable/baselines.cpp" "src/CMakeFiles/ibarb.dir/arbtable/baselines.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/arbtable/baselines.cpp.o.d"
  "/root/repo/src/arbtable/defrag.cpp" "src/CMakeFiles/ibarb.dir/arbtable/defrag.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/arbtable/defrag.cpp.o.d"
  "/root/repo/src/arbtable/entry_set.cpp" "src/CMakeFiles/ibarb.dir/arbtable/entry_set.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/arbtable/entry_set.cpp.o.d"
  "/root/repo/src/arbtable/fill_algorithm.cpp" "src/CMakeFiles/ibarb.dir/arbtable/fill_algorithm.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/arbtable/fill_algorithm.cpp.o.d"
  "/root/repo/src/arbtable/requirements.cpp" "src/CMakeFiles/ibarb.dir/arbtable/requirements.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/arbtable/requirements.cpp.o.d"
  "/root/repo/src/arbtable/table_manager.cpp" "src/CMakeFiles/ibarb.dir/arbtable/table_manager.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/arbtable/table_manager.cpp.o.d"
  "/root/repo/src/iba/arbiter.cpp" "src/CMakeFiles/ibarb.dir/iba/arbiter.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/iba/arbiter.cpp.o.d"
  "/root/repo/src/iba/flow_control.cpp" "src/CMakeFiles/ibarb.dir/iba/flow_control.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/iba/flow_control.cpp.o.d"
  "/root/repo/src/iba/headers.cpp" "src/CMakeFiles/ibarb.dir/iba/headers.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/iba/headers.cpp.o.d"
  "/root/repo/src/iba/link.cpp" "src/CMakeFiles/ibarb.dir/iba/link.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/iba/link.cpp.o.d"
  "/root/repo/src/iba/packet.cpp" "src/CMakeFiles/ibarb.dir/iba/packet.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/iba/packet.cpp.o.d"
  "/root/repo/src/iba/sl_to_vl.cpp" "src/CMakeFiles/ibarb.dir/iba/sl_to_vl.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/iba/sl_to_vl.cpp.o.d"
  "/root/repo/src/iba/vl_arbitration.cpp" "src/CMakeFiles/ibarb.dir/iba/vl_arbitration.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/iba/vl_arbitration.cpp.o.d"
  "/root/repo/src/network/graph.cpp" "src/CMakeFiles/ibarb.dir/network/graph.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/network/graph.cpp.o.d"
  "/root/repo/src/network/routing.cpp" "src/CMakeFiles/ibarb.dir/network/routing.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/network/routing.cpp.o.d"
  "/root/repo/src/network/topology.cpp" "src/CMakeFiles/ibarb.dir/network/topology.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/network/topology.cpp.o.d"
  "/root/repo/src/qos/admission.cpp" "src/CMakeFiles/ibarb.dir/qos/admission.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/qos/admission.cpp.o.d"
  "/root/repo/src/qos/deadline.cpp" "src/CMakeFiles/ibarb.dir/qos/deadline.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/qos/deadline.cpp.o.d"
  "/root/repo/src/qos/dynamic.cpp" "src/CMakeFiles/ibarb.dir/qos/dynamic.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/qos/dynamic.cpp.o.d"
  "/root/repo/src/qos/traffic_classes.cpp" "src/CMakeFiles/ibarb.dir/qos/traffic_classes.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/qos/traffic_classes.cpp.o.d"
  "/root/repo/src/qos/vl_planning.cpp" "src/CMakeFiles/ibarb.dir/qos/vl_planning.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/qos/vl_planning.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/ibarb.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/ibarb.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/ibarb.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/sim/trace.cpp.o.d"
  "/root/repo/src/subnet/mad.cpp" "src/CMakeFiles/ibarb.dir/subnet/mad.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/subnet/mad.cpp.o.d"
  "/root/repo/src/subnet/subnet_manager.cpp" "src/CMakeFiles/ibarb.dir/subnet/subnet_manager.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/subnet/subnet_manager.cpp.o.d"
  "/root/repo/src/traffic/besteffort.cpp" "src/CMakeFiles/ibarb.dir/traffic/besteffort.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/traffic/besteffort.cpp.o.d"
  "/root/repo/src/traffic/cbr.cpp" "src/CMakeFiles/ibarb.dir/traffic/cbr.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/traffic/cbr.cpp.o.d"
  "/root/repo/src/traffic/vbr.cpp" "src/CMakeFiles/ibarb.dir/traffic/vbr.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/traffic/vbr.cpp.o.d"
  "/root/repo/src/traffic/workload.cpp" "src/CMakeFiles/ibarb.dir/traffic/workload.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/traffic/workload.cpp.o.d"
  "/root/repo/src/transport/rc.cpp" "src/CMakeFiles/ibarb.dir/transport/rc.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/transport/rc.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/ibarb.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/ibarb.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/ibarb.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/CMakeFiles/ibarb.dir/util/table_printer.cpp.o" "gcc" "src/CMakeFiles/ibarb.dir/util/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
