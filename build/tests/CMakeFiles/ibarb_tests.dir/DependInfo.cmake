
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_admission.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_admission.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_admission.cpp.o.d"
  "/root/repo/tests/test_arbiter.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_arbiter.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_arbiter.cpp.o.d"
  "/root/repo/tests/test_arbiter_model.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_arbiter_model.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_arbiter_model.cpp.o.d"
  "/root/repo/tests/test_bit_reversal.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_bit_reversal.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_bit_reversal.cpp.o.d"
  "/root/repo/tests/test_buffer.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_buffer.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_buffer.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_crc.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_crc.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_crc.cpp.o.d"
  "/root/repo/tests/test_deadline.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_deadline.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_deadline.cpp.o.d"
  "/root/repo/tests/test_defrag.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_defrag.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_defrag.cpp.o.d"
  "/root/repo/tests/test_dynamic.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_dynamic.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_dynamic.cpp.o.d"
  "/root/repo/tests/test_entry_set.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_entry_set.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_entry_set.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_exhaustive_theorem.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_exhaustive_theorem.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_exhaustive_theorem.cpp.o.d"
  "/root/repo/tests/test_fill_algorithm.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_fill_algorithm.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_fill_algorithm.cpp.o.d"
  "/root/repo/tests/test_fill_properties.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_fill_properties.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_fill_properties.cpp.o.d"
  "/root/repo/tests/test_flow_control.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_flow_control.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_flow_control.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_headers.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_headers.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_headers.cpp.o.d"
  "/root/repo/tests/test_integration_qos.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_integration_qos.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_integration_qos.cpp.o.d"
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_link.cpp.o.d"
  "/root/repo/tests/test_mad.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_mad.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_mad.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_packet.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/test_requirements.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_requirements.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_requirements.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_sim_stress.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_sim_stress.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_sim_stress.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_sl_to_vl.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_sl_to_vl.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_sl_to_vl.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_subnet_manager.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_subnet_manager.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_subnet_manager.cpp.o.d"
  "/root/repo/tests/test_table_manager.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_table_manager.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_table_manager.cpp.o.d"
  "/root/repo/tests/test_table_printer.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_table_printer.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_table_printer.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_traffic_classes.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_traffic_classes.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_traffic_classes.cpp.o.d"
  "/root/repo/tests/test_transport.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_transport.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_transport.cpp.o.d"
  "/root/repo/tests/test_vl_arbitration.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_vl_arbitration.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_vl_arbitration.cpp.o.d"
  "/root/repo/tests/test_vl_planning.cpp" "tests/CMakeFiles/ibarb_tests.dir/test_vl_planning.cpp.o" "gcc" "tests/CMakeFiles/ibarb_tests.dir/test_vl_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibarb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
