# Empty dependencies file for ibarb_tests.
# This may be replaced when dependencies are built.
