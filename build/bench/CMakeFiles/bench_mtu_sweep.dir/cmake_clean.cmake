file(REMOVE_RECURSE
  "CMakeFiles/bench_mtu_sweep.dir/bench_mtu_sweep.cpp.o"
  "CMakeFiles/bench_mtu_sweep.dir/bench_mtu_sweep.cpp.o.d"
  "bench_mtu_sweep"
  "bench_mtu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mtu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
