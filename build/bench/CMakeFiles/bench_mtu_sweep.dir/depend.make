# Empty dependencies file for bench_mtu_sweep.
# This may be replaced when dependencies are built.
