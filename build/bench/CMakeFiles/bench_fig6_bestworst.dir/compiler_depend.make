# Empty compiler generated dependencies file for bench_fig6_bestworst.
# This may be replaced when dependencies are built.
