file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bestworst.dir/bench_fig6_bestworst.cpp.o"
  "CMakeFiles/bench_fig6_bestworst.dir/bench_fig6_bestworst.cpp.o.d"
  "bench_fig6_bestworst"
  "bench_fig6_bestworst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bestworst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
