# Empty compiler generated dependencies file for bench_fill_ablation.
# This may be replaced when dependencies are built.
