file(REMOVE_RECURSE
  "CMakeFiles/bench_fill_ablation.dir/bench_fill_ablation.cpp.o"
  "CMakeFiles/bench_fill_ablation.dir/bench_fill_ablation.cpp.o.d"
  "bench_fill_ablation"
  "bench_fill_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fill_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
