# Empty dependencies file for bench_ablation_limit.
# This may be replaced when dependencies are built.
