# Empty dependencies file for bench_misbehavior.
# This may be replaced when dependencies are built.
