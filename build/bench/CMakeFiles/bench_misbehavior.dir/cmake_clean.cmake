file(REMOVE_RECURSE
  "CMakeFiles/bench_misbehavior.dir/bench_misbehavior.cpp.o"
  "CMakeFiles/bench_misbehavior.dir/bench_misbehavior.cpp.o.d"
  "bench_misbehavior"
  "bench_misbehavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misbehavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
