# Empty compiler generated dependencies file for misbehaving_source.
# This may be replaced when dependencies are built.
