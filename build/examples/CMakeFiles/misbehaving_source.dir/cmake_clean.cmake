file(REMOVE_RECURSE
  "CMakeFiles/misbehaving_source.dir/misbehaving_source.cpp.o"
  "CMakeFiles/misbehaving_source.dir/misbehaving_source.cpp.o.d"
  "misbehaving_source"
  "misbehaving_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misbehaving_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
