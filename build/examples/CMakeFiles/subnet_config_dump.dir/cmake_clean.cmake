file(REMOVE_RECURSE
  "CMakeFiles/subnet_config_dump.dir/subnet_config_dump.cpp.o"
  "CMakeFiles/subnet_config_dump.dir/subnet_config_dump.cpp.o.d"
  "subnet_config_dump"
  "subnet_config_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subnet_config_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
