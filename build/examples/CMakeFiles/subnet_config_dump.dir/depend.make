# Empty dependencies file for subnet_config_dump.
# This may be replaced when dependencies are built.
