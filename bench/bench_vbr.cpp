// VBR evaluation — the scenario of the authors' companion study
// ("Performance Evaluation of VBR Traffic in InfiniBand", CCECE'02): the
// same Table-1 SL mix, but sources burst at 4x their mean rate (on/off with
// on-fraction 0.25) while reserving only the mean.
//
// Expected shape: deadline compliance at the full deadline D survives (the
// reservation covers the mean, buffers and the table absorb the bursts),
// while the tight-threshold percentages and jitter visibly degrade compared
// to the CBR columns.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  auto base = bench::config_from_cli(cli);
  base.vbr_on_fraction = cli.get_double("on-fraction", 0.25);

  if (!sf.json) {
    std::cout << "=== VBR vs CBR: per-SL deadline compliance and jitter ===\n";
    std::cout << "VBR shape: bursts at " << 1.0 / base.vbr_on_fraction
              << "x mean rate, on-fraction " << base.vbr_on_fraction << "\n\n";
  }

  std::vector<bench::PaperRunConfig> cfgs(2, base);
  cfgs[0].vbr = false;
  cfgs[1].vbr = true;
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "vbr"));

  const auto cbr_sl = sweep.runs[0]->per_sl();
  const auto vbr_sl = sweep.runs[1]->per_sl();

  int rc = 0;
  if (sf.json) {
    obs::Report report("vbr");
    bench::echo_config(report, base);
    report.config("vbr_on_fraction", base.vbr_on_fraction);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("cbr", [&](util::JsonWriter& w) {
      bench::write_sl_series(w, cbr_sl);
    });
    report.figure("vbr", [&](util::JsonWriter& w) {
      bench::write_sl_series(w, vbr_sl);
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"SL", "CBR @D/10 (%)", "VBR @D/10 (%)",
                              "CBR @D (%)", "VBR @D (%)",
                              "CBR jitter central (%)",
                              "VBR jitter central (%)"});
    // Threshold index for D/10 and the central jitter bin.
    constexpr std::size_t kD10 = 4;
    constexpr std::size_t kCentral = 5;
    for (unsigned sl = 0; sl < 10; ++sl) {
      table.add_row(
          {std::to_string(sl),
           util::TablePrinter::num(cbr_sl[sl].within[kD10] * 100.0, 2),
           util::TablePrinter::num(vbr_sl[sl].within[kD10] * 100.0, 2),
           util::TablePrinter::num(cbr_sl[sl].within.back() * 100.0, 2),
           util::TablePrinter::num(vbr_sl[sl].within.back() * 100.0, 2),
           util::TablePrinter::num(cbr_sl[sl].jitter[kCentral] * 100.0, 2),
           util::TablePrinter::num(vbr_sl[sl].jitter[kCentral] * 100.0, 2)});
    }
    table.print(std::cout);

    std::uint64_t cbr_misses = 0, vbr_misses = 0;
    for (unsigned sl = 0; sl < 10; ++sl) {
      cbr_misses += cbr_sl[sl].deadline_misses;
      vbr_misses += vbr_sl[sl].deadline_misses;
    }
    std::cout << "\ndeadline misses: CBR " << cbr_misses << ", VBR "
              << vbr_misses
              << "\n(VBR keeps the hard guarantee; the soft percentiles and "
                 "jitter pay for the bursts)\n";
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
