// Design-choice ablation: the LimitOfHighPriority value.
//
// The paper leaves 20% of every link to best-effort traffic but serves all
// guaranteed classes from the high-priority table; LimitOfHighPriority
// controls how many bytes of high-priority traffic may pass while a
// low-priority (best-effort) packet waits. This bench sweeps the limit and
// shows the trade: an unlimited value starves best effort under load, while
// small values hand it bandwidth at the cost of QoS-class latency margins.
// The four limits run in parallel via the sweep engine (--jobs N).
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

struct LimitRow {
  unsigned limit = 0;
  double qos_miss_fraction = 0.0;
  double qos_mean_delay_us = 0.0;
  double be_delivered_mbps_per_host = 0.0;
  double be_mean_delay_us = 0.0;
};

LimitRow summarize(const bench::PaperRun& run) {
  LimitRow row;
  row.limit = run.cfg.limit_of_high_priority;
  const auto& m = run.sim->metrics();
  const auto window = static_cast<double>(m.window_length());

  std::uint64_t qos_rx = 0, qos_miss = 0;
  double qos_delay = 0.0;
  std::uint64_t be_bytes = 0;
  double be_delay = 0.0;
  std::uint64_t be_flows = 0;
  for (const auto& c : m.connections) {
    if (c.qos) {
      qos_rx += c.rx_packets;
      qos_miss += c.deadline_misses;
      qos_delay += c.delay.mean() * static_cast<double>(c.rx_packets);
    } else {
      be_bytes += c.rx_wire_bytes;
      be_delay += c.delay.mean();
      ++be_flows;
    }
  }
  if (qos_rx > 0) {
    row.qos_miss_fraction = double(qos_miss) / double(qos_rx);
    row.qos_mean_delay_us =
        qos_delay / double(qos_rx) * iba::kNsPerCycle / 1000.0;
  }
  if (window > 0)
    row.be_delivered_mbps_per_host =
        static_cast<double>(be_bytes) * 8.0 * 1000.0 /
        (window * iba::kNsPerCycle) /
        static_cast<double>(run.graph.hosts().size());
  if (be_flows > 0)
    row.be_mean_delay_us =
        be_delay / double(be_flows) * iba::kNsPerCycle / 1000.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  auto base = bench::config_from_cli(cli);
  base.besteffort_load = cli.get_double("be-load", 0.25);
  // The limit only matters while the high-priority table has backlog at the
  // moment low-priority packets wait: drive the guaranteed classes into
  // backlog by making them all oversend (cf. bench_misbehavior).
  base.oversend_sl_mask = 0x3FF;  // every QoS SL misbehaves
  base.oversend_factor = cli.get_double("oversend", 2.5);

  if (!sf.json)
    std::cout << "=== Ablation: LimitOfHighPriority (best-effort load "
              << base.besteffort_load << " per host; QoS classes oversending "
              << base.oversend_factor << "x) ===\n\n";

  const unsigned limits[] = {255u, 16u, 4u, 1u};
  std::vector<bench::PaperRunConfig> cfgs;
  for (const unsigned limit : limits) {
    auto cfg = base;
    cfg.limit_of_high_priority = static_cast<std::uint8_t>(limit);
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "limit"));

  int rc = 0;
  if (sf.json) {
    obs::Report report("ablation_limit");
    bench::echo_config(report, base);
    report.config("oversend_factor", base.oversend_factor);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("limits", [&](util::JsonWriter& w) {
      w.begin_array();
      for (const auto& run : sweep.runs) {
        const auto row = summarize(*run);
        w.begin_object();
        w.kv("limit", static_cast<std::uint64_t>(row.limit));
        w.kv("unlimited", row.limit == 255);
        w.kv("qos_miss_fraction", row.qos_miss_fraction);
        w.kv("qos_mean_delay_us", row.qos_mean_delay_us);
        w.kv("be_delivered_mbps_per_host", row.be_delivered_mbps_per_host);
        w.kv("be_mean_delay_us", row.be_mean_delay_us);
        w.end_object();
      }
      w.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"limit", "QoS miss frac", "QoS p-mean delay (us)",
                              "BE delivered (Mbps/host)", "BE mean delay (us)"});
    for (const auto& run : sweep.runs) {
      const auto row = summarize(*run);
      table.add_row(
          {row.limit == 255 ? "unlimited" : std::to_string(row.limit),
           util::TablePrinter::pct(row.qos_miss_fraction, 3),
           util::TablePrinter::num(row.qos_mean_delay_us, 1),
           util::TablePrinter::num(row.be_delivered_mbps_per_host, 1),
           util::TablePrinter::num(row.be_mean_delay_us, 1)});
      std::cerr << "[limit " << row.limit
                << "] window=" << run->summary.window_cycles
                << (run->summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: with saturating high-priority traffic an\n"
                 "unlimited limit starves the best-effort classes; tightening\n"
                 "it hands them bandwidth at the oversending classes'\n"
                 "expense (compliant reservations are not at risk either\n"
                 "way - see bench_misbehavior).\n";
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
