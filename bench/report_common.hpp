// Shared machine-readable reporting for the paper benches. Every bench
// builds an obs::Report (schema "ibarb.report/2"), attaches its figures and
// the merged telemetry snapshot, and emits through emit_report — the ONE
// serialization path (util::JsonWriter). There are no hand-rolled JSON
// printers in bench/ anymore; tools/report_schema.json +
// tools/validate_report.py check the envelope in CI.
//
// Determinism: reports must diff byte-identical across --jobs, so nothing
// wall-clock or machine-dependent goes into them — timing stays on stderr.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"
#include "sweep_runner.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"

namespace ibarb::bench {

/// Trace-ring size used for --trace-out runs: big enough to keep every
/// milestone of a quick run, bounded for long ones.
inline constexpr std::size_t kTraceOutCapacity = 1u << 18;

/// Applies the run-0 observability knobs from the standard flags: packet
/// tracing (--trace-out), series sampling (--sample-every) and the
/// self-profiler (--profile). Sweeps call this on cfgs[0] only, so every
/// exported artefact comes from one self-contained, deterministic run.
void apply_run0_observability(PaperRunConfig& cfg, const util::StdFlags& flags);

/// Attaches run.series to the report's `series` section (no-op when the run
/// recorded no series).
void attach_series(obs::Report& report, const PaperRun& run);

/// Exports the CSV bundle for --series-csv DIR. No-op (returning true) when
/// the flag or the series is absent; false after printing to stderr when the
/// export fails.
bool export_series_csv(const obs::SeriesData& series,
                       const util::StdFlags& flags);
bool export_series_csv(const PaperRun& run, const util::StdFlags& flags);

/// Chrome counter tracks derived from a run's series: the QoS audit
/// timelines (missed/late/drops per window) plus per-SL p99 delay. Empty
/// when the run recorded no series.
std::vector<obs::CounterTrack> series_tracks(const obs::SeriesData& series);
std::vector<obs::CounterTrack> series_tracks(const PaperRun& run);

/// Per-run telemetry snapshots merged in run-index order — byte-identical
/// for any --jobs value by the sweep determinism contract.
obs::Snapshot merged_telemetry(const SweepResult& sweep);
obs::Snapshot merged_telemetry(
    const std::vector<std::unique_ptr<PaperRun>>& runs);

/// Standard config echo of a PaperRunConfig into report.config.
void echo_config(obs::Report& report, const PaperRunConfig& cfg);

/// Figure payload: the per-SL series array (within/jitter fractions).
void write_sl_series(util::JsonWriter& w,
                     const std::vector<PaperRun::SlSeries>& series);

/// Figure payload: one Table-2 aggregate row object.
void write_table2(util::JsonWriter& w, const PaperRun::Table2Row& row);

/// Writes the report to `--out FILE` when given (or "-"/absent: stdout).
/// Returns the process exit code.
int emit_report(const obs::Report& report, const util::Cli& cli);

/// Writes a Chrome trace_event file for --trace-out.
/// Returns false (and prints to stderr) when the file cannot be opened.
bool emit_trace(const std::string& path, const sim::PacketTrace& trace,
                const std::vector<obs::PhaseSpan>& spans = {},
                const std::vector<obs::CounterTrack>& counters = {});

/// The standard --trace-out export for a paper run: the packet-trace ring,
/// the series counter tracks, and — when the run profiled under --shards N
/// — one Perfetto track per shard (window spans plus events / barrier-wait
/// / channel-depth counter tracks; see docs/OBSERVABILITY.md).
bool emit_run_trace(const std::string& path, const PaperRun& run);

}  // namespace ibarb::bench
