// Design-choice ablation: per-VL buffer depth.
//
// The paper models VL buffers "large enough to store four whole packets".
// This bench sweeps the depth: shallow buffers throttle the pipeline
// (credits bound the in-flight data per VL), deep buffers add nothing once
// the bandwidth-delay product is covered. The four depths run in parallel
// via the sweep engine (--jobs N).
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  const auto base = bench::config_from_cli(cli);

  if (!sf.json)
    std::cout << "=== Ablation: per-VL buffer depth (packets) ===\n\n";

  const unsigned depths[] = {1u, 2u, 4u, 8u};
  std::vector<bench::PaperRunConfig> cfgs;
  for (const unsigned depth : depths) {
    auto cfg = base;
    cfg.buffer_packets = depth;
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "buffers"));

  int rc = 0;
  if (sf.json) {
    obs::Report report("ablation_buffers");
    bench::echo_config(report, base);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("depths", [&](util::JsonWriter& w) {
      w.begin_array();
      for (const auto& run : sweep.runs) {
        const auto& m = run->sim->metrics();
        std::uint64_t rx = 0, miss = 0;
        double delay = 0.0;
        for (const auto& c : m.connections) {
          if (!c.qos) continue;
          rx += c.rx_packets;
          miss += c.deadline_misses;
          delay += c.delay.mean() * static_cast<double>(c.rx_packets);
        }
        w.begin_object();
        w.kv("buffer_packets",
             static_cast<std::uint64_t>(run->cfg.buffer_packets));
        w.kv("qos_miss_fraction", rx ? double(miss) / double(rx) : 0.0);
        w.kv("qos_mean_delay_us",
             rx ? delay / double(rx) * iba::kNsPerCycle / 1000.0 : 0.0);
        w.key("table2");
        bench::write_table2(w, run->table2());
        w.end_object();
      }
      w.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"buffers", "delivered (B/cyc/node)",
                              "switch util (%)", "QoS miss frac",
                              "mean delay (us)"});
    for (const auto& run : sweep.runs) {
      const auto& m = run->sim->metrics();
      std::uint64_t rx = 0, miss = 0;
      double delay = 0.0;
      for (const auto& c : m.connections) {
        if (!c.qos) continue;
        rx += c.rx_packets;
        miss += c.deadline_misses;
        delay += c.delay.mean() * static_cast<double>(c.rx_packets);
      }
      const auto t2 = run->table2();
      table.add_row(
          {std::to_string(run->cfg.buffer_packets),
           util::TablePrinter::num(t2.delivered_bytes_per_cycle_per_node, 4),
           util::TablePrinter::num(t2.switch_utilization * 100.0, 2),
           util::TablePrinter::pct(rx ? double(miss) / double(rx) : 0.0, 3),
           util::TablePrinter::num(
               rx ? delay / double(rx) * iba::kNsPerCycle / 1000.0 : 0.0, 1)});
      std::cerr << "[depth " << run->cfg.buffer_packets
                << "] window=" << run->summary.window_cycles
                << (run->summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: throughput saturates around the paper's\n"
                 "4-packet depth; deadline compliance holds at every depth\n"
                 "(credits only slow sources down, they never drop packets).\n";
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
