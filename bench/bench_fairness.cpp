// Crossbar-scheduler fairness ablation: the zoo (wrr|islip|matrix|abr) under
// three adversarial single-switch patterns.
//
// The paper's arbitration tables govern each output LINK; upstream of them
// sits the crossbar matching policy, which decides WHICH input reaches an
// output queue first. This bench isolates that layer on the smallest fabric
// where it matters — one 8-port switch — and measures what each scheduler
// does to fairness (Jain's index over per-connection delivered throughput)
// and to per-SL latency under:
//
//   permutation  host i -> host (i+1)%8, one QoS SL per pair. Conflict-free
//                in principle: a maximal-matching scheduler (islip) should
//                sustain every lane at its offered load.
//   bursty       the same permutation shifted by 3, but on/off VBR sources.
//                Pointer/priority memory decides who absorbs whose burst.
//   hotspot      hosts 1..7 all target host 0. The crossbar picks which
//                input reaches the contended output queue; the Jain index
//                over the seven contenders is the fairness headline.
//
// Every pattern also carries best-effort flows on SL8 (low-priority table),
// so abr's explicit-rate lane has something to meter: its xbar.throttled
// counter appears per row. All (scheduler x pattern) runs are independent
// simulations run via util::parallel_for — reports are byte-identical for
// any --jobs value.
#include <array>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "iba/link.hpp"
#include "network/routing.hpp"
#include "network/topology.hpp"
#include "paper_runner.hpp"
#include "report_common.hpp"
#include "sched/crossbar_impl.hpp"
#include "sim/simulator.hpp"
#include "util/parallel.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

constexpr unsigned kHosts = 8;
constexpr std::uint32_t kPayload = 1024;     // 1050 wire cycles at 1x
constexpr iba::Cycle kQosInterval = 1200;    // ~87% offered load per lane
constexpr iba::Cycle kBeInterval = 4800;     // best-effort spill on top
constexpr iba::Cycle kDeadline = 60'000;
constexpr iba::Cycle kWarmup = 100'000;
constexpr iba::Cycle kWindow = 1'000'000;

enum class Pattern { kPermutation, kBursty, kHotspot };
constexpr std::array<Pattern, 3> kPatterns = {
    Pattern::kPermutation, Pattern::kBursty, Pattern::kHotspot};

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kPermutation: return "permutation";
    case Pattern::kBursty: return "bursty";
    case Pattern::kHotspot: return "hotspot";
  }
  return "?";
}

constexpr std::array<sched::CrossbarImpl, 4> kImpls = {
    sched::CrossbarImpl::kWrr, sched::CrossbarImpl::kIslip,
    sched::CrossbarImpl::kMatrix, sched::CrossbarImpl::kAbr};

/// One SL per host pair on the high-priority table, best effort on VL8 in
/// the low table. The limit keeps low-priority from total starvation so the
/// BE throughput column is meaningful under every scheduler.
iba::VlArbitrationTable fabric_table() {
  iba::VlArbitrationTable t;
  for (unsigned i = 0; i < kHosts; ++i)
    t.high()[i] = iba::ArbTableEntry{static_cast<iba::VirtualLane>(i), 16};
  t.low()[0] = iba::ArbTableEntry{8, 4};
  t.set_limit_of_high_priority(8);
  return t;
}

void program_fabric(sim::Simulator& sim, const network::FabricGraph& g) {
  const auto table = fabric_table();
  for (iba::NodeId n = 0; n < g.node_count(); ++n) {
    const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
    for (unsigned p = 0; p < ports; ++p)
      if (g.peer(n, static_cast<iba::PortIndex>(p)))
        sim.set_output_arbitration(n, static_cast<iba::PortIndex>(p), table);
  }
  sim.set_sl_to_vl_all(iba::SlToVlMappingTable::identity(15));
}

struct SlRow {
  std::uint64_t rx = 0;
  double delay_us = 0.0;  ///< Mean end-to-end delay; 0 when nothing landed.
  /// Worst per-window p99 delay across the measurement window, from the
  /// PR 5 series layer (log2-bucket upper bound, so conservative).
  double p99_us = 0.0;
};

struct Row {
  sched::CrossbarImpl impl = sched::CrossbarImpl::kWrr;
  Pattern pattern = Pattern::kPermutation;
  double jain_qos = 0.0;
  double jain_be = 0.0;
  double qos_mbps = 0.0;      ///< Delivered wire Mbps, all QoS lanes.
  double be_mbps = 0.0;       ///< Delivered wire Mbps, best-effort lanes.
  double miss_fraction = 0.0;
  std::array<SlRow, kHosts> sl{};
  obs::Snapshot telemetry;    ///< Per-run snapshot (xbar.* et al).
};

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over per-connection
/// delivered bytes; 1 = perfectly equal shares, 1/n = one flow hogs all.
double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

void add_pattern_flows(sim::Simulator& sim, const network::FabricGraph& g,
                       Pattern p, std::uint64_t seed) {
  const auto hosts = g.hosts();
  std::uint64_t salt = 0;
  const auto add = [&](unsigned src, unsigned dst, iba::ServiceLevel sl,
                       iba::Cycle interval, sim::GeneratorKind kind,
                       bool qos) {
    sim::FlowSpec f;
    f.src_host = hosts[src];
    f.dst_host = hosts[dst];
    f.sl = sl;
    f.payload_bytes = kPayload;
    f.interval = interval;
    f.kind = kind;
    f.deadline = kDeadline;
    f.qos = qos;
    f.seed = seed * 97 + ++salt;
    sim.add_flow(f);
  };

  switch (p) {
    case Pattern::kPermutation:
      for (unsigned i = 0; i < kHosts; ++i)
        add(i, (i + 1) % kHosts, static_cast<iba::ServiceLevel>(i),
            kQosInterval, sim::GeneratorKind::kCbr, true);
      break;
    case Pattern::kBursty:
      for (unsigned i = 0; i < kHosts; ++i)
        add(i, (i + 3) % kHosts, static_cast<iba::ServiceLevel>(i),
            kQosInterval, sim::GeneratorKind::kOnOffVbr, true);
      break;
    case Pattern::kHotspot:
      for (unsigned i = 1; i < kHosts; ++i)
        add(i, 0, static_cast<iba::ServiceLevel>(i), kQosInterval,
            sim::GeneratorKind::kCbr, true);
      break;
  }
  // Best-effort load on SL8 (low-priority table), deliberately clashing:
  // every host floods one of TWO shared sinks, so four BE heads contend for
  // each sink's crossbar output and the schedulers' best-effort policies
  // (abr's max-min rate lane vs. positional tie-breaks) become visible in
  // the Jain(BE) column and the xbar.throttled counter.
  for (unsigned i = 0; i < kHosts; ++i) {
    unsigned dst = (i % 2) ? kHosts - 1 : kHosts - 2;
    if (dst == i) dst = (dst == kHosts - 1) ? kHosts - 2 : kHosts - 1;
    add(i, dst, 8, kBeInterval, sim::GeneratorKind::kPoisson, false);
  }
}

Row run_one(sched::CrossbarImpl impl, Pattern pattern, std::uint64_t seed) {
  const auto g = network::gen::single_switch(kHosts);
  const auto routes = network::compute_routes(g);

  sim::SimConfig sc;
  sc.seed = seed;
  sc.crossbar_impl = impl;
  sc.queue_impl = bench::queue_impl_from_env();
  sc.sample_every = kWarmup;  // series windows align with the warmup edge
  sim::Simulator sim(g, routes, sc);
  program_fabric(sim, g);
  add_pattern_flows(sim, g, pattern, seed);

  sim.run_until(kWarmup);
  sim.metrics().start_window(sim.now());
  sim.run_until(kWarmup + kWindow);
  sim.metrics().stop_window(sim.now());

  Row row;
  row.impl = impl;
  row.pattern = pattern;
  row.telemetry = sim.telemetry_snapshot();

  const auto& m = sim.metrics();
  const double window = static_cast<double>(m.window_length());
  std::vector<double> qos_bytes, be_bytes;
  std::uint64_t qos_rx = 0, qos_miss = 0, qos_wire = 0, be_wire = 0;
  for (const auto& c : m.connections) {
    if (c.qos) {
      qos_bytes.push_back(static_cast<double>(c.rx_wire_bytes));
      qos_rx += c.rx_packets;
      qos_miss += c.deadline_misses;
      qos_wire += c.rx_wire_bytes;
      auto& s = row.sl[c.sl % kHosts];
      s.rx += c.rx_packets;
      s.delay_us = c.delay.mean() * iba::kNsPerCycle / 1000.0;
    } else {
      be_bytes.push_back(static_cast<double>(c.rx_wire_bytes));
      be_wire += c.rx_wire_bytes;
    }
  }
  row.jain_qos = jain_index(qos_bytes);
  row.jain_be = jain_index(be_bytes);

  // Per-SL tail latency from the series layer: the worst windowed p99 over
  // the measurement span (warmup windows excluded by the time stamp).
  if (sim.series() != nullptr) {
    const auto series = sim.series()->finalize(sim.now());
    for (const auto& sd : series.sl_delay) {
      if (sd.sl >= kHosts) continue;
      double worst = 0.0;
      for (std::size_t w = 0; w < sd.p99.size(); ++w) {
        if (w < series.time.size() && series.time[w] <= kWarmup) continue;
        worst = std::max(
            worst, static_cast<double>(sd.p99[w]) * iba::kNsPerCycle / 1000.0);
      }
      row.sl[sd.sl].p99_us = worst;
    }
  }
  if (qos_rx > 0)
    row.miss_fraction =
        static_cast<double>(qos_miss) / static_cast<double>(qos_rx);
  if (window > 0.0) {
    const double to_mbps = 8.0 * 1000.0 / (window * iba::kNsPerCycle);
    row.qos_mbps = static_cast<double>(qos_wire) * to_mbps;
    row.be_mbps = static_cast<double>(be_wire) * to_mbps;
  }
  return row;
}

std::uint64_t xbar_counter(const Row& row, std::string_view name) {
  const auto it = row.telemetry.counters.find(std::string(name));
  return it == row.telemetry.counters.end() ? 0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(31);

  // --crossbar restricts the ablation to one scheduler (CI uses this to pin
  // a matrix leg); absent means the whole zoo. IBARB_CROSSBAR deliberately
  // does NOT apply here — comparing the schedulers is the bench's job.
  std::vector<sched::CrossbarImpl> impls(kImpls.begin(), kImpls.end());
  if (!sf.crossbar.empty())
    impls = {*sched::parse_crossbar_impl(sf.crossbar)};

  if (!sf.json)
    std::cout << "=== Crossbar fairness ablation (" << kHosts
              << "-port switch; QoS load " << kQosInterval
              << "-cycle CBR/VBR, best effort on SL8) ===\n\n";

  struct Job {
    sched::CrossbarImpl impl;
    Pattern pattern;
  };
  std::vector<Job> jobs;
  for (const auto pattern : kPatterns)
    for (const auto impl : impls) jobs.push_back({impl, pattern});

  std::vector<Row> rows(jobs.size());
  util::parallel_for(sf.jobs, jobs.size(), [&](std::size_t i) {
    rows[i] = run_one(jobs[i].impl, jobs[i].pattern, sf.seed);
    if (!sf.quiet)
      std::cerr << "[" << pattern_name(jobs[i].pattern) << "/"
                << sched::crossbar_impl_name(jobs[i].impl) << "] done\n";
  });

  int rc = 0;
  if (sf.json) {
    obs::Report report("fairness");
    report.config("hosts", static_cast<std::uint64_t>(kHosts));
    report.config("payload_bytes", static_cast<std::uint64_t>(kPayload));
    report.config("qos_interval", static_cast<std::uint64_t>(kQosInterval));
    report.config("be_interval", static_cast<std::uint64_t>(kBeInterval));
    report.config("deadline", static_cast<std::uint64_t>(kDeadline));
    report.config("warmup", static_cast<std::uint64_t>(kWarmup));
    report.config("window", static_cast<std::uint64_t>(kWindow));
    report.config("seed", sf.seed);

    std::vector<obs::Snapshot> parts;
    for (const auto& row : rows) parts.push_back(row.telemetry);
    report.telemetry(obs::Snapshot::merge(parts));

    report.figure("fairness", [&](util::JsonWriter& w) {
      w.begin_array();
      for (const auto pattern : kPatterns) {
        w.begin_object();
        w.kv("pattern", pattern_name(pattern));
        w.key("rows");
        w.begin_array();
        for (const auto& row : rows) {
          if (row.pattern != pattern) continue;
          w.begin_object();
          w.kv("crossbar", sched::crossbar_impl_name(row.impl));
          w.kv("jain_qos", row.jain_qos);
          w.kv("jain_be", row.jain_be);
          w.kv("qos_delivered_mbps", row.qos_mbps);
          w.kv("be_delivered_mbps", row.be_mbps);
          w.kv("miss_fraction", row.miss_fraction);
          w.key("sl");
          w.begin_array();
          for (unsigned sl = 0; sl < kHosts; ++sl) {
            if (row.sl[sl].rx == 0) continue;
            w.begin_object();
            w.kv("sl", static_cast<std::uint64_t>(sl));
            w.kv("rx_packets", row.sl[sl].rx);
            w.kv("mean_delay_us", row.sl[sl].delay_us);
            w.kv("p99_delay_us", row.sl[sl].p99_us);
            w.end_object();
          }
          w.end_array();
          w.key("xbar");
          w.begin_object();
          w.kv("rounds", xbar_counter(row, "xbar.rounds"));
          w.kv("grants", xbar_counter(row, "xbar.grants"));
          w.kv("iterations", xbar_counter(row, "xbar.iterations"));
          w.kv("blocked_output", xbar_counter(row, "xbar.blocked_output"));
          w.kv("blocked_space", xbar_counter(row, "xbar.blocked_space"));
          w.kv("throttled", xbar_counter(row, "xbar.throttled"));
          w.end_object();
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    for (const auto pattern : kPatterns) {
      std::cout << "--- " << pattern_name(pattern) << " ---\n";
      util::TablePrinter table({"crossbar", "Jain(QoS)", "Jain(BE)",
                                "QoS Mbps", "BE Mbps", "miss frac",
                                "SL delay lo..hi (us)", "SL p99 hi (us)",
                                "throttled"});
      for (const auto& row : rows) {
        if (row.pattern != pattern) continue;
        double lo = 0.0, hi = 0.0, p99 = 0.0;
        bool first = true;
        for (const auto& s : row.sl) {
          if (s.rx == 0) continue;
          lo = first ? s.delay_us : std::min(lo, s.delay_us);
          hi = first ? s.delay_us : std::max(hi, s.delay_us);
          p99 = std::max(p99, s.p99_us);
          first = false;
        }
        table.add_row({std::string(sched::crossbar_impl_name(row.impl)),
                       util::TablePrinter::num(row.jain_qos, 4),
                       util::TablePrinter::num(row.jain_be, 4),
                       util::TablePrinter::num(row.qos_mbps, 1),
                       util::TablePrinter::num(row.be_mbps, 1),
                       util::TablePrinter::pct(row.miss_fraction, 2),
                       util::TablePrinter::num(lo, 1) + ".." +
                           util::TablePrinter::num(hi, 1),
                       util::TablePrinter::num(p99, 1),
                       std::to_string(xbar_counter(row, "xbar.throttled"))});
      }
      table.print(std::cout);
      std::cout << "\n";
    }
    std::cout << "Jain's index: 1 = equal per-connection throughput, 1/n =\n"
                 "one connection monopolizes. QoS lanes should stay near 1\n"
                 "under EVERY scheduler (the arbitration tables, not the\n"
                 "crossbar, own the guarantees); the discriminator is the\n"
                 "best-effort column under bursty load, where pointer memory\n"
                 "(islip), least-recently-served order (matrix) and abr's\n"
                 "explicit-rate lane (nonzero throttled) each pick different\n"
                 "winners among the clashing SL8 flows.\n";
  }

  cli.warn_unused(std::cerr);
  return rc;
}
