// Experiment E4 — reproduces Figure 6: for the SLs with the strictest
// latency requirements (0-3), the per-threshold delay profile of the best
// and the worst connection (selected by the fraction of packets meeting the
// tightest threshold, D/30 — the paper likewise picks a threshold tight
// enough that Figure 4a is below 100%).
//
// Expected shape (paper §4.3): even the worst connection reaches 100% by D,
// and best/worst curves nearly coincide — the arbitration tables give every
// connection of an SL the same treatment.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  // Default to LARGE packets: they are the regime where the tight D/30
  // threshold discriminates (with 256 B packets every connection is already
  // at 100% there — see bench_fig4_delay panel (a)). The paper picked its
  // threshold for the same reason: tight enough that Figure 4a is < 100%.
  auto base = bench::PaperRunConfig{};
  base.mtu = iba::Mtu::kMtu4096;
  auto cfg = bench::config_from_cli(cli, base);
  // More packets per connection make the best/worst selection meaningful.
  if (!cli.has("packets") && !cli.get_bool("quick", false))
    cfg.min_rx_packets = 60;
  bench::apply_run0_observability(cfg, sf);

  if (!sf.json)
    std::cout << "=== Figure 6: best vs worst connection for the strictest "
                 "SLs ===\n\n";
  const auto sweep = bench::run_sweep({cfg},
                                      bench::sweep_options_from_cli(cli, "fig6"));
  const auto& run = *sweep.runs.front();

  int rc = 0;
  if (sf.json) {
    obs::Report report("fig6_bestworst");
    bench::echo_config(report, cfg);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, run);
    report.figure("best_worst", [&](util::JsonWriter& w) {
      w.begin_array();
      for (iba::ServiceLevel sl = 0; sl <= 3; ++sl) {
        const auto bw = run.best_worst(sl);
        if (!bw.found) continue;  // no received packets: nothing to rank
        w.begin_object();
        w.kv("sl", static_cast<std::uint64_t>(sl));
        w.kv("best_flow", static_cast<std::uint64_t>(
                              run.workload.connections[bw.best].flow));
        w.kv("worst_flow", static_cast<std::uint64_t>(
                               run.workload.connections[bw.worst].flow));
        w.key("best_within").begin_array();
        for (const double v : bw.best_within) w.value(v);
        w.end_array();
        w.key("worst_within").begin_array();
        for (const double v : bw.worst_within) w.value(v);
        w.end_array();
        w.end_object();
      }
      w.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    for (iba::ServiceLevel sl = 0; sl <= 3; ++sl) {
      const auto bw = run.best_worst(sl);
      if (!bw.found) {
        std::cout << "SL " << int(sl) << ": no received packets, skipped\n\n";
        continue;
      }
      const auto& best = run.workload.connections[bw.best];
      const auto& worst = run.workload.connections[bw.worst];
      std::cout << "SL " << int(sl) << " (best: flow " << best.flow
                << ", worst: flow " << worst.flow << ")\n";
      std::vector<std::string> headers{"connection"};
      for (std::size_t k = 0; k < sim::kDelayThresholds; ++k)
        headers.push_back(bench::threshold_label(k));
      util::TablePrinter table(headers);
      std::vector<std::string> brow{"best"};
      std::vector<std::string> wrow{"worst"};
      for (std::size_t k = 0; k < sim::kDelayThresholds; ++k) {
        brow.push_back(util::TablePrinter::num(bw.best_within[k] * 100.0, 2));
        wrow.push_back(util::TablePrinter::num(bw.worst_within[k] * 100.0, 2));
      }
      table.add_row(std::move(brow));
      table.add_row(std::move(wrow));
      table.print(std::cout);
      const double spread = bw.best_within[0] - bw.worst_within[0];
      std::cout << "best-worst spread at D/30: "
                << util::TablePrinter::num(spread * 100.0, 2)
                << " percentage points; both at D: "
                << util::TablePrinter::num(bw.worst_within.back() * 100.0, 1)
                << "%\n\n";
    }
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, run);
  if (!bench::export_series_csv(run, sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
