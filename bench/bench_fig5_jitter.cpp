// Experiment E3 — reproduces Figure 5: average packet jitter per Service
// Level, as the percentage of packets whose inter-arrival deviation falls in
// each interval relative to the connection's nominal inter-arrival time
// (IAT). Panels (a) SLs 0-4 and (b) SLs 5-9, small packets (the paper notes
// large packets behave the same; pass --mtu large to check).
//
// Expected shape (paper §4.3): small-bandwidth SLs put essentially all
// packets in the central [-IAT/8, +IAT/8) interval; the big-bandwidth SLs
// (5 and 9) show a Gaussian-like spread that never exceeds +-IAT.
#include <iostream>

#include "paper_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

void print_panel(const char* title,
                 const std::vector<bench::PaperRun::SlSeries>& series,
                 unsigned sl_lo, unsigned sl_hi) {
  std::cout << title << "\n";
  std::vector<std::string> headers{"interval"};
  for (unsigned sl = sl_lo; sl <= sl_hi; ++sl)
    headers.push_back("SL " + std::to_string(sl));
  util::TablePrinter table(headers);
  for (std::size_t b = 0; b < sim::kJitterBins; ++b) {
    std::vector<std::string> row{bench::jitter_label(b)};
    for (unsigned sl = sl_lo; sl <= sl_hi; ++sl)
      row.push_back(util::TablePrinter::num(series[sl].jitter[b] * 100.0, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto cfg = bench::config_from_cli(cli);

  std::cout << "=== Figure 5: average packet jitter (% of packets per "
               "interval, relative to IAT) ===\n";
  std::cout << "packet size: "
            << (cfg.mtu == iba::Mtu::kMtu256 ? "small (256 B)" : "other")
            << "\n\n";

  const auto run = bench::run_paper_experiment(cfg);
  const auto series = run->per_sl();
  print_panel("(a) SLs 0-4", series, 0, 4);
  print_panel("(b) SLs 5-9", series, 5, 9);

  double outside = 0.0;
  for (const auto& s : series)
    outside += s.jitter[0] + s.jitter[sim::kJitterBins - 1];
  std::cout << "fraction of deviations beyond +-IAT (all SLs summed): "
            << util::TablePrinter::num(outside * 100.0, 3) << "%\n";

  const auto unused = cli.unused_flags();
  if (!unused.empty()) std::cerr << "warning: unused flags " << unused << "\n";
  return 0;
}
