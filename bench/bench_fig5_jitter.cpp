// Experiment E3 — reproduces Figure 5: average packet jitter per Service
// Level, as the percentage of packets whose inter-arrival deviation falls in
// each interval relative to the connection's nominal inter-arrival time
// (IAT). Panels (a) SLs 0-4 and (b) SLs 5-9, small packets (the paper notes
// large packets behave the same; pass --mtu large to check).
//
// A single experiment by default; --sweep-seed S --replicas N turns it into
// an N-replica sweep over derived seeds (run in parallel with --jobs) whose
// per-bin fractions are averaged — jitter curves from one seed are the
// noisiest of the figure reproductions.
//
// Expected shape (paper §4.3): small-bandwidth SLs put essentially all
// packets in the central [-IAT/8, +IAT/8) interval; the big-bandwidth SLs
// (5 and 9) show a Gaussian-like spread that never exceeds +-IAT.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

/// Per-SL jitter fractions averaged over the replicas (one replica: the
/// series itself, byte-identical to the historical single-run output).
std::vector<bench::PaperRun::SlSeries> mean_series(
    const std::vector<std::unique_ptr<bench::PaperRun>>& runs) {
  std::vector<bench::PaperRun::SlSeries> mean = runs.front()->per_sl();
  if (runs.size() == 1) return mean;
  for (std::size_t r = 1; r < runs.size(); ++r) {
    const auto series = runs[r]->per_sl();
    for (std::size_t sl = 0; sl < mean.size(); ++sl)
      for (std::size_t b = 0; b < sim::kJitterBins; ++b)
        mean[sl].jitter[b] += series[sl].jitter[b];
  }
  for (auto& s : mean)
    for (auto& j : s.jitter) j /= static_cast<double>(runs.size());
  return mean;
}

void print_panel(const char* title,
                 const std::vector<bench::PaperRun::SlSeries>& series,
                 unsigned sl_lo, unsigned sl_hi) {
  std::cout << title << "\n";
  std::vector<std::string> headers{"interval"};
  for (unsigned sl = sl_lo; sl <= sl_hi; ++sl)
    headers.push_back("SL " + std::to_string(sl));
  util::TablePrinter table(headers);
  for (std::size_t b = 0; b < sim::kJitterBins; ++b) {
    std::vector<std::string> row{bench::jitter_label(b)};
    for (unsigned sl = sl_lo; sl <= sl_hi; ++sl)
      row.push_back(util::TablePrinter::num(series[sl].jitter[b] * 100.0, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  const auto cfg = bench::config_from_cli(cli);
  const auto replicas =
      static_cast<std::size_t>(cli.get_int("replicas", 1));

  if (!sf.json) {
    std::cout << "=== Figure 5: average packet jitter (% of packets per "
                 "interval, relative to IAT) ===\n";
    std::cout << "packet size: "
              << (cfg.mtu == iba::Mtu::kMtu256 ? "small (256 B)" : "other")
              << "\n\n";
  }

  std::vector<bench::PaperRunConfig> cfgs(replicas == 0 ? 1 : replicas, cfg);
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "fig5"));
  const auto series = mean_series(sweep.runs);

  double outside = 0.0;
  for (const auto& s : series)
    outside += s.jitter[0] + s.jitter[sim::kJitterBins - 1];

  int rc = 0;
  if (sf.json) {
    obs::Report report("fig5_jitter");
    bench::echo_config(report, cfg);
    report.config("replicas", static_cast<std::uint64_t>(cfgs.size()));
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("per_sl", [&](util::JsonWriter& w) {
      bench::write_sl_series(w, series);
    });
    report.figure("outside_iat_fraction",
                  [&](util::JsonWriter& w) { w.value(outside); });
    rc = bench::emit_report(report, cli);
  } else {
    print_panel("(a) SLs 0-4", series, 0, 4);
    print_panel("(b) SLs 5-9", series, 5, 9);
    std::cout << "fraction of deviations beyond +-IAT (all SLs summed): "
              << util::TablePrinter::num(outside * 100.0, 3) << "%\n";
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
