// Experiment E7 — ablation of the filling algorithm (§3.3): acceptance ratio
// of the bit-reversal scan (with and without defragmentation) against the
// sequential / random scan orders and the scattered strawman, under the same
// randomized arrival/departure trace. The (policy, seed) matrix runs in
// parallel (--jobs N): every cell is an independent seeded experiment whose
// result lands in its own slot, and the fixed-order aggregation afterwards
// keeps stdout byte-identical for any job count.
//
// The headline column is "avoidable rejections": requests refused although
// enough free entries existed. The paper's pair (bit-reversal + defrag) is
// provably at zero; every baseline fragments.
#include <iostream>
#include <vector>

#include "arbtable/baselines.hpp"
#include "report_common.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(1);
  arbtable::AcceptanceWorkload w;
  w.requests =
      static_cast<unsigned>(cli.get_int("requests", 5000));
  w.departure_probability = cli.get_double("departures", 0.45);
  // Entry-limited regime: the whole link is reservable so rejections come
  // from table placement, the thing being ablated, not the bandwidth cap.
  w.reservable_fraction = cli.get_double("reservable", 1.0);
  w.min_mbps = cli.get_double("min-mbps", 4.0);
  w.max_mbps = cli.get_double("max-mbps", 32.0);
  const unsigned seeds = static_cast<unsigned>(cli.get_int("seeds", 10));

  if (!sf.json) {
    std::cout << "=== Fill-algorithm ablation: acceptance under churn ===\n";
    std::cout << w.requests << " requests/seed, " << seeds
              << " seeds, departure probability " << w.departure_probability
              << "\n\n";
  }

  struct Case {
    const char* name;
    const char* key;
    arbtable::FillPolicy policy;
    bool defrag;
  };
  const Case cases[] = {
      {"bit-reversal + defrag (paper)", "bitrev_defrag",
       arbtable::FillPolicy::kBitReversal, true},
      {"bit-reversal, no defrag", "bitrev",
       arbtable::FillPolicy::kBitReversal, false},
      {"sequential + defrag", "sequential_defrag",
       arbtable::FillPolicy::kSequential, true},
      {"sequential, no defrag", "sequential",
       arbtable::FillPolicy::kSequential, false},
      {"random, no defrag", "random", arbtable::FillPolicy::kRandom, false},
      {"scattered (no spacing)", "scattered", arbtable::FillPolicy::kScattered,
       false},
  };
  const std::size_t n_cases = std::size(cases);

  // One flat slot per (policy, seed) cell, filled concurrently.
  std::vector<arbtable::AcceptanceResult> cells(n_cases * seeds);
  util::parallel_for(cli.jobs(), cells.size(), [&](std::size_t i) {
    const auto& c = cases[i / seeds];
    auto ws = w;
    ws.seed = 1000 + (i % seeds);
    cells[i] = arbtable::run_acceptance_experiment(c.policy, c.defrag, ws);
  });

  // Fixed-order aggregation: byte-identical for any --jobs.
  std::vector<arbtable::AcceptanceResult> sums(n_cases);
  for (std::size_t k = 0; k < n_cases; ++k) {
    for (unsigned s = 0; s < seeds; ++s) {
      const auto& r = cells[k * seeds + s];
      sums[k].offered += r.offered;
      sums[k].accepted += r.accepted;
      sums[k].rejected_bandwidth += r.rejected_bandwidth;
      sums[k].rejected_entries += r.rejected_entries;
      sums[k].avoidable_rejections += r.avoidable_rejections;
      sums[k].defrag_moves += r.defrag_moves;
    }
  }

  int rc = 0;
  if (sf.json) {
    obs::Report report("fill_ablation");
    report.config("requests", static_cast<std::uint64_t>(w.requests));
    report.config("seeds", static_cast<std::uint64_t>(seeds));
    report.config("departure_probability", w.departure_probability);
    report.config("reservable_fraction", w.reservable_fraction);
    report.config("min_mbps", w.min_mbps);
    report.config("max_mbps", w.max_mbps);
    report.figure("policies", [&](util::JsonWriter& jw) {
      jw.begin_array();
      for (std::size_t k = 0; k < n_cases; ++k) {
        const auto& sum = sums[k];
        jw.begin_object();
        jw.kv("policy", cases[k].key);
        jw.kv("defrag", cases[k].defrag);
        jw.kv("offered", sum.offered);
        jw.kv("accepted", sum.accepted);
        jw.kv("acceptance_ratio", sum.acceptance_ratio());
        jw.kv("rejected_bandwidth", sum.rejected_bandwidth);
        jw.kv("rejected_entries", sum.rejected_entries);
        jw.kv("avoidable_rejections", sum.avoidable_rejections);
        jw.kv("defrag_moves", sum.defrag_moves);
        jw.end_object();
      }
      jw.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"policy", "accepted (%)", "rej: bandwidth",
                              "rej: entries", "avoidable rejections",
                              "defrag moves"});
    for (std::size_t k = 0; k < n_cases; ++k) {
      const auto& sum = sums[k];
      table.add_row({cases[k].name,
                     util::TablePrinter::num(sum.acceptance_ratio() * 100.0, 2),
                     std::to_string(sum.rejected_bandwidth),
                     std::to_string(sum.rejected_entries),
                     std::to_string(sum.avoidable_rejections),
                     std::to_string(sum.defrag_moves)});
    }
    table.print(std::cout);
    std::cout << "\nNote: 'scattered' accepts by count alone (it ignores the\n"
                 "distance requirement entirely), so its acceptance is an\n"
                 "upper bound that comes at the cost of the latency guarantee\n"
                 "— see bench_micro / the simulator tests for the gap bound.\n";
  }

  cli.warn_unused(std::cerr);
  return rc;
}
