// Churn-service benchmark: the robustness headline of the control plane.
//
// A dual-spine fabric (the bench_faults topology, no packet flows) is
// driven by the ChurnEngine: a deterministic storm of connection setups,
// teardowns and re-rates with Zipf-skewed port popularity, interleaved —
// in the storm scenario — with a link-fault storm whose mass reroutes race
// the live churn. What the report must show:
//
//   * zero Theorem-1 false rejects: no guaranteed request is ever refused
//     while every hop of its path had room;
//   * zero guarantee revocations through every fault-driven reroute;
//   * overload protection working: best-effort load-shed at the queue
//     watermark, guaranteed setups backpressured and retried with capped
//     exponential backoff, never lost silently;
//   * crash-consistency: a snapshot taken mid-storm and restored into a
//     fresh process replays the rest of the run byte-identically — every
//     run here re-proves it in-process (world A runs 0..end and snapshots
//     at S; world B restores at S and runs S..end; their final filtered
//     telemetry must be equal), and --snapshot-out/--restore-from let CI
//     prove it across two separate processes with cmp(1).
//
// Determinism: reports diff byte-identical across --jobs, and a restored
// run's report is byte-identical to the uninterrupted run's. Everything
// mode-dependent (snapshot size, deferral counts, verification notes)
// goes to stderr, never into the report envelope.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/churn_engine.hpp"
#include "control/snapshot.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "network/graph.hpp"
#include "qos/admission.hpp"
#include "qos/traffic_classes.hpp"
#include "report_common.hpp"
#include "subnet/subnet_manager.hpp"
#include "sweep_runner.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

struct BenchConfig {
  bool storm = true;             ///< --scenario storm|steady
  unsigned spines = 2;
  unsigned leaves = 4;
  unsigned hosts_per_leaf = 2;
  iba::Cycle length = 1'500'000;
  iba::Cycle tick = 10'000;
  iba::Cycle snapshot_at = 0;    ///< 0 = length / 2.
  bool restore_check = true;     ///< In-process restore-and-compare per run.
  std::uint64_t seed = 1;
  unsigned runs = 2;
  unsigned jobs = 1;
  bool json = false;
  std::string snapshot_out;      ///< Run 0 writes its snapshot blob here.
  std::string restore_from;      ///< Restore mode: replay from this blob.
};

control::ChurnConfig make_churn_config(const BenchConfig& bc,
                                       std::uint64_t run_seed) {
  control::ChurnConfig c;
  c.tick = bc.tick;
  c.horizon = bc.length;
  c.seed = run_seed;
  return c;
}

/// Same dual-spine asymmetric fabric as bench_faults: spine 0 carries 4x
/// links, the backup spines 1x, so a primary-link fault moves a leaf onto
/// a quarter of the reservable bandwidth — mass reroutes with real
/// capacity pressure.
network::FabricGraph make_fabric(const BenchConfig& bc) {
  network::FabricGraph g;
  const iba::Link fast{iba::LinkRate::k4x, 2};
  const iba::Link slow{iba::LinkRate::k1x, 2};
  std::vector<iba::NodeId> spine(bc.spines);
  for (auto& s : spine) s = g.add_switch(bc.leaves);
  std::vector<iba::NodeId> leaf(bc.leaves);
  for (auto& l : leaf) l = g.add_switch(bc.spines + bc.hosts_per_leaf);
  for (unsigned l = 0; l < bc.leaves; ++l)
    for (unsigned t = 0; t < bc.spines; ++t)
      g.connect(leaf[l], static_cast<iba::PortIndex>(t), spine[t],
                static_cast<iba::PortIndex>(l), t == 0 ? fast : slow);
  for (const auto l : leaf)
    for (unsigned h = 0; h < bc.hosts_per_leaf; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, l, static_cast<iba::PortIndex>(bc.spines + h),
                fast);
    }
  return g;
}

/// Link-level storm only (flaps, stuck, slow): the churn world moves no
/// packets, so corruption/drop/overload windows would be inert.
faults::FaultPlan make_storm_plan(const network::FabricGraph& graph,
                                  const BenchConfig& bc,
                                  std::uint64_t run_seed) {
  faults::StormConfig sc;
  sc.seed = run_seed ^ 0x570Bull;
  sc.start = bc.length / 10;
  sc.length = bc.length * 6 / 10;
  sc.link_flaps = 3;
  sc.stuck_ports = 1;
  sc.slow_ports = 1;
  sc.corrupt_windows = 0;
  sc.drop_windows = 0;
  sc.overload_bursts = 0;
  return faults::FaultPlan::random_storm(graph, sc);
}

/// Only the deterministic control-plane telemetry families go into the
/// report: data-plane and queue internals (sim.*, eq.*, ...) legitimately
/// differ between an uninterrupted world and one rebuilt from a snapshot
/// (the restored simulator never replayed cycles 0..S), and wall-clock
/// never belongs there.
obs::Snapshot filter_control_families(const obs::Snapshot& in) {
  const auto keep = [](const std::string& name) {
    return name.starts_with("ctl.") || name.starts_with("tm.") ||
           name.starts_with("faults.") || name.starts_with("recovery.");
  };
  obs::Snapshot out;
  for (const auto& [k, v] : in.counters)
    if (keep(k)) out.counters.emplace(k, v);
  for (const auto& [k, v] : in.gauges)
    if (keep(k)) out.gauges.emplace(k, v);
  for (const auto& [k, v] : in.histograms)
    if (keep(k)) out.histograms.emplace(k, v);
  return out;
}

/// One self-contained world. Construction order doubles as destruction
/// order: the simulator's registry dies before admission/injector/
/// coordinator/engine remove their probes — hence engine & co. are
/// declared after sim and destroyed first.
struct World {
  network::FabricGraph graph;
  subnet::SubnetManager sm;
  qos::AdmissionControl admission;
  sim::Simulator sim;
  std::optional<faults::FaultInjector> injector;
  std::optional<faults::RecoveryCoordinator> coordinator;
  std::optional<control::ChurnEngine> engine;

  World(const BenchConfig& bc, std::uint64_t run_seed,
        const faults::FaultPlan& plan)
      : graph(make_fabric(bc)), sm(graph),
        admission(graph, sm.routes(), qos::paper_catalogue(),
                  [&] {
                    qos::AdmissionControl::Config ac;
                    ac.seed = run_seed;
                    return ac;
                  }()),
        sim(graph, sm.routes(), [&] {
          sim::SimConfig scfg;
          scfg.seed = run_seed ^ 0x5117ull;
          return scfg;
        }()) {
    admission.attach_telemetry(sim.telemetry());
    if (bc.storm) {
      injector.emplace(sim, graph, plan, run_seed ^ 0xFA7Eull);
      coordinator.emplace(sim, graph, sm, admission, *injector,
                          faults::RecoveryConfig{});
    }
    engine.emplace(sim, admission, graph,
                   injector ? &*injector : nullptr,
                   coordinator ? &*coordinator : nullptr,
                   make_churn_config(bc, run_seed));
  }

  control::World refs() {
    return control::World{&admission, injector ? &*injector : nullptr,
                          coordinator ? &*coordinator : nullptr,
                          engine ? &*engine : nullptr};
  }
};

struct RunResult {
  std::uint64_t run_seed = 0;
  control::ChurnStats churn;
  faults::RecoveryStats recovery;
  faults::FaultStats fault;
  std::uint64_t live_final = 0;
  obs::Snapshot telemetry;          ///< Filtered to the control families.
  // Everything below is mode-dependent diagnostics — stderr only.
  std::size_t snapshot_bytes = 0;
  iba::Cycle snapshot_time = 0;
  std::uint64_t deferrals = 0;
  bool restore_verified = false;
  std::vector<std::uint8_t> blob;   ///< Kept for --snapshot-out (run 0).
};

void harvest(World& w, RunResult& out) {
  out.churn = w.engine->stats();
  if (w.coordinator) out.recovery = w.coordinator->stats();
  if (w.injector) out.fault = w.injector->stats();
  out.live_final = w.admission.live_count();
  out.telemetry = filter_control_families(w.sim.telemetry_snapshot());
  std::string why;
  if (!w.admission.audit_full(&why))
    throw std::runtime_error("post-churn audit failed: " + why);
}

/// World B of the crash-consistency proof: fresh everything, the fault
/// plan's tail armed first, then the snapshot applied and the remainder
/// of the run replayed.
RunResult run_restored(const BenchConfig& bc, std::uint64_t run_seed,
                       const faults::FaultPlan& full_plan,
                       const std::vector<std::uint8_t>& blob) {
  const auto snap_time = control::peek_snapshot_time(blob);
  std::vector<faults::FaultEvent> tail;
  for (const auto& ev : full_plan.events())
    if (ev.at > snap_time) tail.push_back(ev);
  faults::FaultPlan tail_plan(std::move(tail));

  World w(bc, run_seed, tail_plan);
  if (w.injector) w.injector->arm();  // before load: event ties must order
                                      // fault-before-tick, as in world A
  control::restore_world(blob, run_seed, w.refs());
  w.sm.configure_fabric(w.sim, w.admission);
  w.sim.run_until(bc.length);

  RunResult res;
  res.run_seed = run_seed;
  res.snapshot_time = snap_time;
  harvest(w, res);
  return res;
}

RunResult run_one(const BenchConfig& bc, std::uint64_t run_seed,
                  bool want_snapshot) {
  const auto plan =
      bc.storm ? make_storm_plan(make_fabric(bc), bc, run_seed)
               : faults::FaultPlan{};
  World w(bc, run_seed, plan);

  RunResult res;
  res.run_seed = run_seed;
  if (want_snapshot) {
    const auto at = bc.snapshot_at != 0 ? bc.snapshot_at : bc.length / 2;
    w.engine->arm_snapshot(at, [&](iba::Cycle now) {
      res.blob = control::save_world(now, run_seed, w.refs());
      res.snapshot_time = now;
    });
  }
  w.engine->start();
  w.sm.configure_fabric(w.sim, w.admission);
  if (w.injector) w.injector->arm();
  w.sim.run_until(bc.length);

  res.deferrals = w.engine->snapshot_deferrals();
  harvest(w, res);
  res.snapshot_bytes = res.blob.size();

  if (want_snapshot && res.blob.empty())
    throw std::runtime_error(
        "no quiescent tick found after --snapshot-at; storm too dense");

  if (want_snapshot && bc.restore_check) {
    // The crash-consistency proof: restore into a fresh world and demand
    // the identical end state.
    const auto replay = run_restored(bc, run_seed, plan, res.blob);
    if (!(replay.telemetry == res.telemetry))
      throw std::runtime_error(
          "restored run diverged from the uninterrupted run");
    if (replay.live_final != res.live_final ||
        replay.churn.false_rejects != res.churn.false_rejects)
      throw std::runtime_error("restored run's final accounting differs");
    res.restore_verified = true;
  }
  return res;
}

obs::Report make_report(const BenchConfig& bc,
                        const std::vector<RunResult>& runs) {
  obs::Report report("bench_churn");
  report.config("scenario", std::string(bc.storm ? "storm" : "steady"));
  report.config("length", static_cast<std::uint64_t>(bc.length));
  report.config("tick", static_cast<std::uint64_t>(bc.tick));
  report.config("spines", static_cast<std::uint64_t>(bc.spines));
  report.config("leaves", static_cast<std::uint64_t>(bc.leaves));
  report.config("hosts_per_leaf",
                static_cast<std::uint64_t>(bc.hosts_per_leaf));
  report.config("seed", bc.seed);
  report.config("runs", static_cast<std::uint64_t>(bc.runs));

  std::vector<obs::Snapshot> parts;
  parts.reserve(runs.size());
  for (const auto& r : runs) parts.push_back(r.telemetry);
  report.telemetry(obs::Snapshot::merge(parts));

  report.figure("runs", [&runs](util::JsonWriter& w) {
    w.begin_array();
    for (const auto& r : runs) {
      w.begin_object();
      w.kv("seed", r.run_seed);
      w.kv("submitted", r.churn.submitted);
      w.kv("admitted_guaranteed", r.churn.admitted_guaranteed);
      w.kv("admitted_best_effort", r.churn.admitted_best_effort);
      w.kv("teardowns", r.churn.teardowns);
      w.kv("modifies", r.churn.modifies);
      w.kv("modify_stale", r.churn.modify_stale);
      w.kv("modify_failed_restored", r.churn.modify_failed_restored);
      w.kv("backpressured", r.churn.backpressured);
      w.kv("retries", r.churn.retries);
      w.kv("gave_up", r.churn.gave_up);
      w.kv("load_shed", r.churn.load_shed);
      w.kv("be_rejected", r.churn.be_rejected);
      w.kv("degradation_shed", r.churn.degradation_shed);
      w.kv("audits", r.churn.audits);
      w.kv("false_rejects", r.churn.false_rejects);
      w.kv("live_final", r.live_final);
      w.kv("resweeps", r.recovery.resweeps);
      w.kv("rerouted", r.recovery.rerouted);
      w.kv("suspended", r.recovery.suspended);
      w.kv("restored", r.recovery.restored);
      w.kv("shed", r.recovery.shed_best_effort);
      w.kv("revocations", r.recovery.guarantee_revocations);
      w.kv("link_down_events", r.fault.link_down_events);
      w.end_object();
    }
    w.end_array();
  });
  report.figure("totals", [&runs](util::JsonWriter& w) {
    std::uint64_t false_rejects = 0;
    std::uint64_t revocations = 0;
    std::uint64_t audits = 0;
    for (const auto& r : runs) {
      false_rejects += r.churn.false_rejects;
      revocations += r.recovery.guarantee_revocations;
      audits += r.churn.audits;
    }
    w.begin_object();
    w.kv("false_rejects", false_rejects);
    w.kv("revocations", revocations);
    w.kv("audits", audits);
    w.end_object();
  });
  return report;
}

std::vector<std::uint8_t> read_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open snapshot file " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_blob(const std::string& path,
                const std::vector<std::uint8_t>& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write snapshot file " + path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(1);
  BenchConfig bc;
  const auto scenario = cli.get("scenario", "storm");
  if (scenario != "storm" && scenario != "steady") {
    std::cerr << "unknown --scenario " << scenario
              << " (want storm|steady)\n";
    return 2;
  }
  bc.storm = scenario == "storm";
  bc.spines = static_cast<unsigned>(cli.get_int("spines", 2));
  bc.leaves = static_cast<unsigned>(cli.get_int("leaves", 4));
  bc.hosts_per_leaf = static_cast<unsigned>(cli.get_int("hosts-per-leaf", 2));
  bc.length = static_cast<iba::Cycle>(
      cli.get_int("length", cli.get_bool("quick", false) ? 600'000
                                                         : 1'500'000));
  bc.tick = static_cast<iba::Cycle>(cli.get_int("tick", 10'000));
  bc.snapshot_at =
      static_cast<iba::Cycle>(cli.get_int("snapshot-at", 0));
  bc.restore_check = !cli.get_bool("no-restore", false);
  bc.seed = sf.seed;
  bc.runs = static_cast<unsigned>(cli.get_int("runs", 2));
  bc.jobs = sf.jobs;
  bc.json = sf.json;
  bc.snapshot_out = cli.get("snapshot-out", "");
  bc.restore_from = cli.get("restore-from", "");

  std::vector<RunResult> runs;
  if (!bc.restore_from.empty()) {
    // Cross-process restore: rebuild world 0, apply the blob, replay the
    // tail. The emitted report must cmp(1)-equal the writer's.
    bc.runs = 1;
    const auto run_seed = bench::derive_run_seed(bc.seed, 0);
    const auto plan = bc.storm
                          ? make_storm_plan(make_fabric(bc), bc, run_seed)
                          : faults::FaultPlan{};
    runs.push_back(run_restored(bc, run_seed, plan,
                                read_blob(bc.restore_from)));
    std::cerr << "restored from " << bc.restore_from << " at cycle "
              << runs[0].snapshot_time << "\n";
  } else {
    runs.resize(bc.runs);
    util::parallel_for(bc.jobs, bc.runs, [&](std::size_t i) {
      // Every run snapshots (and, by default, re-proves restore
      // equivalence in-process); the blob itself stays out of the report.
      runs[i] = run_one(bc, bench::derive_run_seed(bc.seed, i),
                        /*want_snapshot=*/true);
    });
    for (const auto& r : runs)
      std::cerr << "run seed " << r.run_seed << ": snapshot "
                << r.snapshot_bytes << " bytes at cycle " << r.snapshot_time
                << ", deferrals " << r.deferrals << ", restore "
                << (r.restore_verified ? "verified" : "skipped") << "\n";
    if (!bc.snapshot_out.empty()) {
      write_blob(bc.snapshot_out, runs[0].blob);
      std::cerr << "snapshot written to " << bc.snapshot_out << "\n";
    }
  }

  // The two headline invariants are hard assertions, not report fields to
  // eyeball: a storm that produces either is a failed run.
  for (const auto& r : runs) {
    if (r.churn.false_rejects != 0)
      throw std::runtime_error("Theorem-1 false rejects detected");
    if (r.recovery.guarantee_revocations != 0)
      throw std::runtime_error("guarantee revocations detected");
  }

  int rc = 0;
  if (bc.json) {
    rc = bench::emit_report(make_report(bc, runs), cli);
  } else {
    std::cout << "=== Admission churn: " << runs.size() << " run(s), "
              << bc.length << " cycles, scenario "
              << (bc.storm ? "storm" : "steady") << " ===\n\n";
    util::TablePrinter table({"run", "submitted", "admit g/be", "teardown",
                              "retry/bp", "shed ls/deg", "reroute/susp",
                              "false rej", "revoked", "live"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::ostringstream admit, retry, shed, reroute;
      admit << r.churn.admitted_guaranteed << "/"
            << r.churn.admitted_best_effort;
      retry << r.churn.retries << "/" << r.churn.backpressured;
      shed << r.churn.load_shed << "/" << r.churn.degradation_shed;
      reroute << r.recovery.rerouted << "/" << r.recovery.suspended;
      table.add_row({std::to_string(i), std::to_string(r.churn.submitted),
                 admit.str(), std::to_string(r.churn.teardowns), retry.str(),
                 shed.str(), reroute.str(),
                 std::to_string(r.churn.false_rejects),
                 std::to_string(r.recovery.guarantee_revocations),
                 std::to_string(r.live_final)});
    }
    table.print(std::cout);
    std::cout << "\nEvery run snapshot+restore "
              << (bc.restore_check ? "verified byte-identical replay.\n"
                                   : "ran without the restore check.\n");
  }
  cli.warn_unused(std::cerr);
  return rc;
}
