#include "report_common.hpp"

#include <fstream>
#include <iostream>

namespace ibarb::bench {

obs::Snapshot merged_telemetry(
    const std::vector<std::unique_ptr<PaperRun>>& runs) {
  std::vector<obs::Snapshot> parts;
  parts.reserve(runs.size());
  for (const auto& run : runs) parts.push_back(run->sim->telemetry_snapshot());
  return obs::Snapshot::merge(parts);
}

obs::Snapshot merged_telemetry(const SweepResult& sweep) {
  return merged_telemetry(sweep.runs);
}

void echo_config(obs::Report& report, const PaperRunConfig& cfg) {
  report.config("switches", static_cast<std::uint64_t>(cfg.switches));
  report.config("mtu_bytes",
                static_cast<std::uint64_t>(iba::mtu_bytes(cfg.mtu)));
  report.config("seed", cfg.seed);
  report.config("min_rx_packets", cfg.min_rx_packets);
  report.config("warmup", static_cast<std::uint64_t>(cfg.warmup));
  report.config("besteffort_load", cfg.besteffort_load);
  report.config("scheme", cfg.scheme == qos::Scheme::kNewProposal
                              ? "new_proposal"
                              : "legacy");
  report.config("buffer_packets",
                static_cast<std::uint64_t>(cfg.buffer_packets));
  report.config("limit_of_high_priority",
                static_cast<std::uint64_t>(cfg.limit_of_high_priority));
}

void write_sl_series(util::JsonWriter& w,
                     const std::vector<PaperRun::SlSeries>& series) {
  w.begin_array();
  for (const auto& s : series) {
    w.begin_object();
    w.kv("sl", static_cast<std::uint64_t>(s.sl));
    w.kv("connections", s.connections);
    w.kv("rx_packets", s.rx_packets);
    w.kv("deadline_misses", s.deadline_misses);
    w.key("within").begin_array();
    for (const double v : s.within) w.value(v);
    w.end_array();
    w.key("jitter").begin_array();
    for (const double v : s.jitter) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void write_table2(util::JsonWriter& w, const PaperRun::Table2Row& row) {
  w.begin_object();
  w.kv("injected_bytes_per_cycle_per_node",
       row.injected_bytes_per_cycle_per_node);
  w.kv("delivered_bytes_per_cycle_per_node",
       row.delivered_bytes_per_cycle_per_node);
  w.kv("host_utilization", row.host_utilization);
  w.kv("switch_utilization", row.switch_utilization);
  w.kv("host_reserved_mbps", row.host_reserved_mbps);
  w.kv("switch_reserved_mbps", row.switch_reserved_mbps);
  w.end_object();
}

int emit_report(const obs::Report& report, const util::Cli& cli) {
  const auto out = cli.get("out", "");
  if (out.empty() || out == "-") {
    report.write(std::cout);
    return 0;
  }
  std::ofstream f(out, std::ios::binary);
  if (!f) {
    std::cerr << "error: cannot open --out file " << out << "\n";
    return 1;
  }
  report.write(f);
  std::cerr << "wrote " << out << "\n";
  return 0;
}

bool emit_trace(const std::string& path, const sim::PacketTrace& trace,
                const std::vector<obs::PhaseSpan>& spans) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "error: cannot open --trace-out file " << path << "\n";
    return false;
  }
  obs::write_chrome_trace(f, trace, spans);
  std::cerr << "wrote " << path << " (" << trace.size()
            << " trace records)\n";
  return true;
}

}  // namespace ibarb::bench
