#include "report_common.hpp"

#include <fstream>
#include <iostream>

namespace ibarb::bench {

obs::Snapshot merged_telemetry(
    const std::vector<std::unique_ptr<PaperRun>>& runs) {
  std::vector<obs::Snapshot> parts;
  parts.reserve(runs.size());
  for (const auto& run : runs) parts.push_back(run->sim->telemetry_snapshot());
  return obs::Snapshot::merge(parts);
}

obs::Snapshot merged_telemetry(const SweepResult& sweep) {
  return merged_telemetry(sweep.runs);
}

void apply_run0_observability(PaperRunConfig& cfg,
                              const util::StdFlags& flags) {
  if (!flags.trace_out.empty()) cfg.trace_capacity = kTraceOutCapacity;
  cfg.sample_every = flags.sample_every;
  cfg.profile = flags.profile;
}

void attach_series(obs::Report& report, const PaperRun& run) {
  if (run.series.has_value()) report.series(*run.series);
}

bool export_series_csv(const obs::SeriesData& series,
                       const util::StdFlags& flags) {
  if (flags.series_csv.empty()) return true;
  if (!obs::write_series_csv(series, flags.series_csv)) return false;
  std::cerr << "wrote " << flags.series_csv << "/ (" << series.windows()
            << " series windows)\n";
  return true;
}

bool export_series_csv(const PaperRun& run, const util::StdFlags& flags) {
  if (!run.series.has_value()) return true;
  return export_series_csv(*run.series, flags);
}

std::vector<obs::CounterTrack> series_tracks(const obs::SeriesData& s) {
  std::vector<obs::CounterTrack> tracks;
  const auto track = [&](const std::string& name, const auto& values) {
    obs::CounterTrack t;
    t.name = name;
    t.points.reserve(s.time.size());
    for (std::size_t i = 0; i < s.time.size() && i < values.size(); ++i)
      t.points.emplace_back(s.time[i], static_cast<double>(values[i]));
    if (!t.points.empty()) tracks.push_back(std::move(t));
  };
  track("qos.missed", s.qos.missed);
  track("qos.late", s.qos.late);
  track("qos.drops", s.qos.drops);
  for (const auto& sl : s.sl_delay)
    track("sl" + std::to_string(sl.sl) + ".delay_p99", sl.p99);
  return tracks;
}

std::vector<obs::CounterTrack> series_tracks(const PaperRun& run) {
  if (!run.series.has_value()) return {};
  return series_tracks(*run.series);
}

void echo_config(obs::Report& report, const PaperRunConfig& cfg) {
  report.config("topo", resolve_topology(cfg).canonical());
  report.config("routing", resolve_routing(cfg));
  report.config("switches", static_cast<std::uint64_t>(cfg.switches));
  report.config("mtu_bytes",
                static_cast<std::uint64_t>(iba::mtu_bytes(cfg.mtu)));
  report.config("seed", cfg.seed);
  report.config("min_rx_packets", cfg.min_rx_packets);
  report.config("warmup", static_cast<std::uint64_t>(cfg.warmup));
  report.config("besteffort_load", cfg.besteffort_load);
  report.config("scheme", cfg.scheme == qos::Scheme::kNewProposal
                              ? "new_proposal"
                              : "legacy");
  report.config("buffer_packets",
                static_cast<std::uint64_t>(cfg.buffer_packets));
  report.config("limit_of_high_priority",
                static_cast<std::uint64_t>(cfg.limit_of_high_priority));
}

void write_sl_series(util::JsonWriter& w,
                     const std::vector<PaperRun::SlSeries>& series) {
  w.begin_array();
  for (const auto& s : series) {
    w.begin_object();
    w.kv("sl", static_cast<std::uint64_t>(s.sl));
    w.kv("connections", s.connections);
    w.kv("rx_packets", s.rx_packets);
    w.kv("deadline_misses", s.deadline_misses);
    w.key("within").begin_array();
    for (const double v : s.within) w.value(v);
    w.end_array();
    w.key("jitter").begin_array();
    for (const double v : s.jitter) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void write_table2(util::JsonWriter& w, const PaperRun::Table2Row& row) {
  w.begin_object();
  w.kv("injected_bytes_per_cycle_per_node",
       row.injected_bytes_per_cycle_per_node);
  w.kv("delivered_bytes_per_cycle_per_node",
       row.delivered_bytes_per_cycle_per_node);
  w.kv("host_utilization", row.host_utilization);
  w.kv("switch_utilization", row.switch_utilization);
  w.kv("host_reserved_mbps", row.host_reserved_mbps);
  w.kv("switch_reserved_mbps", row.switch_reserved_mbps);
  w.end_object();
}

int emit_report(const obs::Report& report, const util::Cli& cli) {
  const auto out = cli.get("out", "");
  if (out.empty() || out == "-") {
    report.write(std::cout);
    return 0;
  }
  std::ofstream f(out, std::ios::binary);
  if (!f) {
    std::cerr << "error: cannot open --out file " << out << "\n";
    return 1;
  }
  report.write(f);
  std::cerr << "wrote " << out << "\n";
  return 0;
}

bool emit_trace(const std::string& path, const sim::PacketTrace& trace,
                const std::vector<obs::PhaseSpan>& spans,
                const std::vector<obs::CounterTrack>& counters) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "error: cannot open --trace-out file " << path << "\n";
    return false;
  }
  obs::write_chrome_trace(f, trace, spans, counters);
  std::cerr << "wrote " << path << " (" << trace.size()
            << " trace records)\n";
  return true;
}

bool emit_run_trace(const std::string& path, const PaperRun& run) {
  std::vector<obs::PhaseSpan> spans;
  auto counters = series_tracks(run);
  run.sim->export_shard_tracks(spans, counters);
  return emit_trace(path, run.sim->trace(), spans, counters);
}

}  // namespace ibarb::bench
