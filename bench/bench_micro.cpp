// Experiment E8 — micro-benchmarks (google-benchmark) of the hot operations:
// the fill algorithm's free-set search, allocate/release/defragment on a
// TableManager, the IBA arbiter's per-packet decision, and the up*/down*
// route computation. These are the operations a subnet manager (tables) and
// a switch (arbiter) would run in production.
//
// With --json, runs the regression harness from bench_micro_json.cpp instead
// (wall-clock hot-path rates written to BENCH_micro.json for CI archival).
#include <benchmark/benchmark.h>

#include <string_view>

#include "arbtable/fill_algorithm.hpp"
#include "arbtable/table_manager.hpp"
#include "iba/arbiter.hpp"
#include "network/routing.hpp"
#include "network/topology.hpp"
#include "util/rng.hpp"

using namespace ibarb;

namespace {

arbtable::Requirement req_for_distance(unsigned d) {
  arbtable::Requirement r;
  r.distance = d;
  r.entries = iba::kArbTableEntries / d;
  r.weight_per_entry = 200;
  r.total_weight = r.entries * r.weight_per_entry;
  return r;
}

void BM_FindFreeSet(benchmark::State& state) {
  const auto distance = static_cast<unsigned>(state.range(0));
  // Half-full table: a realistic search.
  iba::ArbTable table{};
  util::Xoshiro256 rng(7);
  for (auto& e : table)
    if (rng.chance(0.5)) e = iba::ArbTableEntry{0, 1};
  for (auto _ : state) {
    auto set = arbtable::find_free_set(table, distance,
                                       arbtable::FillPolicy::kBitReversal);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_FindFreeSet)->Arg(2)->Arg(8)->Arg(64);

void BM_AllocateRelease(benchmark::State& state) {
  arbtable::TableManager::Config cfg;
  cfg.reservable_fraction = 1.0;
  arbtable::TableManager m(cfg);
  const auto req = req_for_distance(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const auto h = m.allocate(1, req, 0.001);
    benchmark::DoNotOptimize(h);
    m.release(*h, req, 0.001);
  }
}
BENCHMARK(BM_AllocateRelease)->Arg(2)->Arg(8)->Arg(64);

void BM_ChurnWithDefrag(benchmark::State& state) {
  arbtable::TableManager::Config cfg;
  cfg.reservable_fraction = 1.0;
  cfg.defrag_on_release = state.range(0) != 0;
  arbtable::TableManager m(cfg);
  util::Xoshiro256 rng(11);
  struct Live {
    arbtable::SeqHandle h;
    arbtable::Requirement r;
  };
  std::vector<Live> live;
  constexpr unsigned kDistances[] = {2, 4, 8, 16, 32, 64};
  for (auto _ : state) {
    if (!live.empty() && rng.chance(0.5)) {
      const auto i = rng.below(live.size());
      m.release(live[i].h, live[i].r, 0.001);
      live[i] = live.back();
      live.pop_back();
    } else {
      const auto r = req_for_distance(kDistances[rng.below(6)]);
      if (const auto h = m.allocate(1, r, 0.001))
        live.push_back(Live{*h, r});
    }
  }
}
BENCHMARK(BM_ChurnWithDefrag)->Arg(0)->Arg(1);

void BM_ArbiterDecision(benchmark::State& state) {
  // Fully programmed table, several competing VLs — the per-packet cost a
  // switch output port pays.
  iba::VlArbitrationTable t;
  for (unsigned i = 0; i < iba::kArbTableEntries; ++i)
    t.high()[i] = iba::ArbTableEntry{static_cast<iba::VirtualLane>(i % 10),
                                     static_cast<std::uint8_t>(100 + i % 50)};
  iba::VlArbiter arb(t);
  iba::ReadyBytes ready{};
  for (unsigned vl = 0; vl < 10; vl += 2) ready[vl] = 282;
  for (auto _ : state) {
    auto d = arb.arbitrate(ready);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ArbiterDecision);

void BM_ArbiterSparse(benchmark::State& state) {
  // Worst case: only one lightly-weighted VL ready, most entries skipped.
  iba::VlArbitrationTable t;
  for (unsigned i = 0; i < iba::kArbTableEntries; i += 16)
    t.high()[i] = iba::ArbTableEntry{3, 10};
  iba::VlArbiter arb(t);
  iba::ReadyBytes ready{};
  ready[3] = 4122;
  for (auto _ : state) {
    auto d = arb.arbitrate(ready);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ArbiterSparse);

void BM_UpDownRoutes(benchmark::State& state) {
  network::IrregularSpec spec;
  spec.switches = static_cast<unsigned>(state.range(0));
  spec.seed = 5;
  const auto g = network::make_irregular(spec);
  for (auto _ : state) {
    auto routes = network::compute_updown_routes(g);
    benchmark::DoNotOptimize(routes);
  }
  state.SetLabel(std::to_string(g.hosts().size()) + " hosts");
}
BENCHMARK(BM_UpDownRoutes)->Arg(8)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_Defragment(benchmark::State& state) {
  // Measure one defrag pass over a fragmented table (rebuild each time).
  util::Xoshiro256 rng(13);
  constexpr unsigned kDistances[] = {2, 4, 8, 16, 32, 64};
  for (auto _ : state) {
    state.PauseTiming();
    arbtable::TableManager::Config cfg;
    cfg.reservable_fraction = 1.0;
    cfg.defrag_on_release = false;
    arbtable::TableManager m(cfg);
    std::vector<std::pair<arbtable::SeqHandle, arbtable::Requirement>> live;
    for (int i = 0; i < 40; ++i) {
      if (!live.empty() && rng.chance(0.4)) {
        const auto k = rng.below(live.size());
        m.release(live[k].first, live[k].second, 0.001);
        live[k] = live.back();
        live.pop_back();
      } else {
        const auto r = req_for_distance(kDistances[rng.below(6)]);
        if (const auto h = m.allocate(1, r, 0.001)) live.emplace_back(*h, r);
      }
    }
    state.ResumeTiming();
    m.defragment();
  }
}
BENCHMARK(BM_Defragment);

}  // namespace

namespace ibarb::bench {
int run_json_harness(int argc, const char* const* argv);
}

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--json")
      return ibarb::bench::run_json_harness(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
