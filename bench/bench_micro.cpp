// Experiment E8 — micro-benchmarks (google-benchmark) of the hot operations:
// the fill algorithm's free-set search, allocate/release/defragment on a
// TableManager, the IBA arbiter's per-packet decision, and the up*/down*
// route computation. These are the operations a subnet manager (tables) and
// a switch (arbiter) would run in production.
//
// With --json, runs the regression harness instead: wall-clock hot-path
// rates written as an obs::Report to BENCH_micro.json (override with
// --out) so CI can archive a comparable artifact per commit (docs/PERF.md
// explains how to read it).
//
// Harness sections (report figures):
//  * queue      — the event queue alone, under a fig4-shaped event stream
//                 (steady-state depth ~20k, the paper network's live event
//                 count), measured for both implementations. The headline
//                 `speedup` is wheel events/sec over the pre-PR binary-heap
//                 baseline on this workload.
//  * sim_fig4   — the full fig4-style experiment (16-switch irregular fabric,
//                 Table-1 workload, small MTU), simulation phase only, for
//                 both queue implementations. End-to-end numbers: includes
//                 all non-queue work, so the ratio here is smaller.
//  * arbiter    — arbitration decisions/sec on dense and sparse tables.
//  * series     — the SeriesRecorder hot path: deliveries/sec through
//                 record_delivery + windowed commits, in a regime without
//                 decimation and one that forces repeated decimations.
//  * shard_channel — the parallel core's cross-shard plumbing: raw SPSC
//                 ring transfer between two threads, the window-burst
//                 push/drain pattern through a ShardChannel (ring + spill),
//                 and the promote step (sort by final (time, key), keyed
//                 insert into the event queue) that merges a window's
//                 cross-shard events.
//  * shard_obs  — the per-shard observability planes (ISSUE 10): the
//                 SeriesRecorder lane fold's per-delivery overhead at 4
//                 lanes (target <2%), and the Snapshot::merge cost of
//                 folding 4 per-shard telemetry parts.
//  * snapshot_roundtrip — the crash-consistent control-plane snapshot
//                 (control/snapshot.hpp): save_world / restore_world /
//                 audit_full wall cost and blob size at small (1k) and
//                 large (100k) live-connection populations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "arbtable/fill_algorithm.hpp"
#include "arbtable/table_manager.hpp"
#include "control/snapshot.hpp"
#include "iba/arbiter.hpp"
#include "network/graph.hpp"
#include "network/routing.hpp"
#include "network/topology.hpp"
#include "qos/admission.hpp"
#include "qos/traffic_classes.hpp"
#include "subnet/subnet_manager.hpp"
#include "obs/report.hpp"
#include "obs/series.hpp"
#include "obs/telemetry.hpp"
#include "paper_runner.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

using namespace ibarb;

namespace {

arbtable::Requirement req_for_distance(unsigned d) {
  arbtable::Requirement r;
  r.distance = d;
  r.entries = iba::kArbTableEntries / d;
  r.weight_per_entry = 200;
  r.total_weight = r.entries * r.weight_per_entry;
  return r;
}

void BM_FindFreeSet(benchmark::State& state) {
  const auto distance = static_cast<unsigned>(state.range(0));
  // Half-full table: a realistic search.
  iba::ArbTable table{};
  util::Xoshiro256 rng(7);
  for (auto& e : table)
    if (rng.chance(0.5)) e = iba::ArbTableEntry{0, 1};
  for (auto _ : state) {
    auto set = arbtable::find_free_set(table, distance,
                                       arbtable::FillPolicy::kBitReversal);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_FindFreeSet)->Arg(2)->Arg(8)->Arg(64);

void BM_AllocateRelease(benchmark::State& state) {
  arbtable::TableManager::Config cfg;
  cfg.reservable_fraction = 1.0;
  arbtable::TableManager m(cfg);
  const auto req = req_for_distance(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const auto h = m.allocate(1, req, 0.001);
    benchmark::DoNotOptimize(h);
    m.release(*h, req, 0.001);
  }
}
BENCHMARK(BM_AllocateRelease)->Arg(2)->Arg(8)->Arg(64);

void BM_ChurnWithDefrag(benchmark::State& state) {
  arbtable::TableManager::Config cfg;
  cfg.reservable_fraction = 1.0;
  cfg.defrag_on_release = state.range(0) != 0;
  arbtable::TableManager m(cfg);
  util::Xoshiro256 rng(11);
  struct Live {
    arbtable::SeqHandle h;
    arbtable::Requirement r;
  };
  std::vector<Live> live;
  constexpr unsigned kDistances[] = {2, 4, 8, 16, 32, 64};
  for (auto _ : state) {
    if (!live.empty() && rng.chance(0.5)) {
      const auto i = rng.below(live.size());
      m.release(live[i].h, live[i].r, 0.001);
      live[i] = live.back();
      live.pop_back();
    } else {
      const auto r = req_for_distance(kDistances[rng.below(6)]);
      if (const auto h = m.allocate(1, r, 0.001))
        live.push_back(Live{*h, r});
    }
  }
}
BENCHMARK(BM_ChurnWithDefrag)->Arg(0)->Arg(1);

void BM_ArbiterDecision(benchmark::State& state) {
  // Fully programmed table, several competing VLs — the per-packet cost a
  // switch output port pays.
  iba::VlArbitrationTable t;
  for (unsigned i = 0; i < iba::kArbTableEntries; ++i)
    t.high()[i] = iba::ArbTableEntry{static_cast<iba::VirtualLane>(i % 10),
                                     static_cast<std::uint8_t>(100 + i % 50)};
  iba::VlArbiter arb(t);
  iba::ReadyBytes ready{};
  for (unsigned vl = 0; vl < 10; vl += 2) ready[vl] = 282;
  for (auto _ : state) {
    auto d = arb.arbitrate(ready);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ArbiterDecision);

void BM_ArbiterSparse(benchmark::State& state) {
  // Worst case: only one lightly-weighted VL ready, most entries skipped.
  iba::VlArbitrationTable t;
  for (unsigned i = 0; i < iba::kArbTableEntries; i += 16)
    t.high()[i] = iba::ArbTableEntry{3, 10};
  iba::VlArbiter arb(t);
  iba::ReadyBytes ready{};
  ready[3] = 4122;
  for (auto _ : state) {
    auto d = arb.arbitrate(ready);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ArbiterSparse);

void BM_UpDownRoutes(benchmark::State& state) {
  network::IrregularSpec spec;
  spec.switches = static_cast<unsigned>(state.range(0));
  spec.seed = 5;
  const auto g = network::gen::irregular(spec);
  for (auto _ : state) {
    auto routes = network::compute_routes(g);
    benchmark::DoNotOptimize(routes);
  }
  state.SetLabel(std::to_string(g.hosts().size()) + " hosts");
}
BENCHMARK(BM_UpDownRoutes)->Arg(8)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_Defragment(benchmark::State& state) {
  // Measure one defrag pass over a fragmented table (rebuild each time).
  util::Xoshiro256 rng(13);
  constexpr unsigned kDistances[] = {2, 4, 8, 16, 32, 64};
  for (auto _ : state) {
    state.PauseTiming();
    arbtable::TableManager::Config cfg;
    cfg.reservable_fraction = 1.0;
    cfg.defrag_on_release = false;
    arbtable::TableManager m(cfg);
    std::vector<std::pair<arbtable::SeqHandle, arbtable::Requirement>> live;
    for (int i = 0; i < 40; ++i) {
      if (!live.empty() && rng.chance(0.4)) {
        const auto k = rng.below(live.size());
        m.release(live[k].first, live[k].second, 0.001);
        live[k] = live.back();
        live.pop_back();
      } else {
        const auto r = req_for_distance(kDistances[rng.below(6)]);
        if (const auto h = m.allocate(1, r, 0.001)) live.emplace_back(*h, r);
      }
    }
    state.ResumeTiming();
    m.defragment();
  }
}
BENCHMARK(BM_Defragment);

// --- The --json regression harness -----------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Inter-event gap drawn from a fig4-shaped mixture: serialization and
/// crossbar completions land tens to hundreds of cycles out, link-level
/// deliveries a few thousand, CBR regenerations tens of thousands, and a
/// trickle beyond the 2^16-cycle wheel horizon exercises the overflow heap.
iba::Cycle fig4_delta(util::Xoshiro256& rng) {
  const double r = rng.uniform();
  if (r < 0.45) return static_cast<iba::Cycle>(rng.between(8, 600));
  if (r < 0.80) return static_cast<iba::Cycle>(rng.between(600, 4000));
  if (r < 0.99) return static_cast<iba::Cycle>(rng.between(4000, 60000));
  return static_cast<iba::Cycle>(rng.between(70000, 300000));
}

struct QueueResult {
  double push_ns = 0.0;        ///< Mean push cost while filling to depth.
  double pop_ns = 0.0;         ///< Mean pop cost while draining.
  double events_per_sec = 0.0; ///< Steady-state pop+reschedule throughput.
  std::uint64_t checksum = 0;  ///< Order-sensitive digest of popped events.
};

QueueResult measure_queue_once(sim::EventQueueImpl impl, std::size_t depth,
                               std::uint64_t events, std::uint64_t seed) {
  QueueResult res;
  // Gaps are pre-drawn into a ring so the timed loops measure the queue, not
  // the random-number generator; the ring fits in L2 and is read in order.
  constexpr std::size_t kRing = 1u << 16;
  static_assert((kRing & (kRing - 1)) == 0);
  std::vector<iba::Cycle> deltas(kRing);
  {
    util::Xoshiro256 rng(seed);
    for (auto& d : deltas) d = fig4_delta(rng);
  }
  std::size_t ring = 0;
  const auto next_delta = [&] { return deltas[ring++ & (kRing - 1)]; };
  sim::EventQueue q(impl);
  iba::Cycle now = 0;

  const auto make_event = [&](iba::Cycle t) {
    sim::Event e;
    e.time = t;
    e.type = sim::EventType::kLinkDeliver;
    e.aux = static_cast<std::uint32_t>(t);
    return e;
  };

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < depth; ++i) q.push(make_event(now + next_delta()));
  res.push_ns = seconds_since(t0) * 1e9 / static_cast<double>(depth);

  // Steady state: pop the earliest event and schedule a successor, the
  // hold-and-regenerate pattern every simulated packet follows.
  t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events; ++i) {
    const sim::Event e = q.pop();
    now = e.time;
    res.checksum = res.checksum * 1099511628211ull + (e.time ^ e.seq);
    q.push(make_event(now + next_delta()));
  }
  res.events_per_sec = static_cast<double>(events) / seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  while (!q.empty()) {
    const sim::Event e = q.pop();
    res.checksum = res.checksum * 1099511628211ull + (e.time ^ e.seq);
  }
  res.pop_ns = seconds_since(t0) * 1e9 / static_cast<double>(depth);
  return res;
}

/// Best of `reps` runs: wall-clock microbenchmarks are noisy downward only
/// (scheduling, frequency ramps), so the fastest run is the least-disturbed
/// estimate. The pop-order checksum must agree across every run.
QueueResult measure_queue(sim::EventQueueImpl impl, std::size_t depth,
                          std::uint64_t events, std::uint64_t seed,
                          unsigned reps) {
  QueueResult best = measure_queue_once(impl, depth, events, seed);
  for (unsigned r = 1; r < reps; ++r) {
    const QueueResult run = measure_queue_once(impl, depth, events, seed);
    if (run.checksum != best.checksum) {
      std::cerr << "error: queue replay checksum varies across runs\n";
      std::exit(2);
    }
    best.events_per_sec = std::max(best.events_per_sec, run.events_per_sec);
    best.push_ns = std::min(best.push_ns, run.push_ns);
    best.pop_ns = std::min(best.pop_ns, run.pop_ns);
  }
  return best;
}

struct SimResult {
  double seconds = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
};

SimResult measure_sim(const bench::PaperRunConfig& cfg, const char* queue_env) {
  setenv("IBARB_EVENT_QUEUE", queue_env, 1);
  bench::PaperRun run(cfg, bench::PaperRun::DeferSim{});
  const auto t0 = std::chrono::steady_clock::now();
  run.run();
  SimResult res;
  res.seconds = seconds_since(t0);
  res.events = run.summary.events;
  res.events_per_sec = static_cast<double>(res.events) / res.seconds;
  unsetenv("IBARB_EVENT_QUEUE");
  return res;
}

double measure_arbiter(const iba::VlArbitrationTable& t,
                       const iba::ReadyBytes& ready, std::uint64_t decisions) {
  iba::VlArbiter arb(t);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < decisions; ++i) {
    const auto d = arb.arbitrate(ready);
    sink += d ? d->vl : 0;
  }
  const double secs = seconds_since(t0);
  // Keep the loop observable without google-benchmark's DoNotOptimize.
  volatile std::uint64_t keep = sink;
  (void)keep;
  return static_cast<double>(decisions) / secs;
}

struct SeriesBenchResult {
  double deliveries_per_sec = 0.0;  ///< record_delivery + commit throughput.
  double samples_per_sec = 0.0;     ///< Committed window boundaries per sec.
  std::uint64_t boundaries = 0;     ///< Boundaries driven through the run.
  std::uint64_t decimations = 0;    ///< Ring-halvings the run triggered.
};

/// Drives a standalone SeriesRecorder the way the simulator does: synthetic
/// delivery times sweep [0, sample_every*boundaries), advancing the window
/// clock before each record. `boundaries` below the ring capacity (512)
/// measures the plain sampling path; far above it, the decimation path.
SeriesBenchResult measure_series(std::uint64_t deliveries,
                                 std::uint64_t sample_every,
                                 std::uint64_t boundaries) {
  obs::TelemetryRegistry reg;
  auto& injected = reg.counter("micro.injected");
  obs::SeriesRecorder::Config sc;
  sc.sample_every = sample_every;
  obs::SeriesRecorder rec(reg, sc);
  constexpr std::uint32_t kConns = 8;
  for (std::uint32_t c = 0; c < kConns; ++c)
    rec.note_connection(c, static_cast<iba::ServiceLevel>(c % 10),
                        /*qos=*/true, /*deadline=*/5000);

  const iba::Cycle end = sample_every * boundaries;
  std::uint64_t ring = 0;
  constexpr std::size_t kRing = 1u << 12;
  std::vector<iba::Cycle> delays(kRing);
  {
    util::Xoshiro256 rng(29);
    for (auto& d : delays) d = rng.between(100, 6000);
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < deliveries; ++i) {
    const iba::Cycle t = i * end / deliveries;
    if (t > rec.next_due()) rec.advance_to(t);
    injected.inc();
    rec.record_delivery(static_cast<std::uint32_t>(i % kConns),
                        static_cast<iba::ServiceLevel>(i % 10),
                        delays[ring++ & (kRing - 1)], /*contracted=*/5000);
  }
  const auto data = rec.finalize(end);
  const double secs = seconds_since(t0);

  SeriesBenchResult res;
  res.deliveries_per_sec = static_cast<double>(deliveries) / secs;
  res.samples_per_sec = static_cast<double>(boundaries) / secs;
  res.boundaries = boundaries;
  res.decimations = data.decimations;
  return res;
}

struct ShardObsBenchResult {
  double single_lane_dps = 0.0;  ///< record_delivery+commit, one lane.
  double multi_lane_dps = 0.0;   ///< Same stream scattered over 4 lanes.
  double lane_fold_overhead_pct = 0.0;  ///< Multi-lane slowdown (target <2%).
  double snapshot_folds_per_sec = 0.0;  ///< Snapshot::merge of 4 shard parts.
  double snapshot_fold_us = 0.0;        ///< Mean wall cost of one fold.
};

/// The per-window series merge cost under shard lanes: the same delivery
/// stream recorded on one lane versus scattered over `lanes` (the shard
/// workers' pattern), committed every `sample_every` cycles. The committed
/// bytes are identical either way (tests/test_shard_obs.cpp); this measures
/// what the lane fold adds per delivery.
double measure_lane_fold(std::uint64_t deliveries, std::uint64_t sample_every,
                         std::uint64_t boundaries, std::size_t lanes) {
  obs::TelemetryRegistry reg;
  auto& injected = reg.counter("micro.injected");
  obs::SeriesRecorder::Config sc;
  sc.sample_every = sample_every;
  obs::SeriesRecorder rec(reg, sc);
  rec.set_lanes(lanes);
  constexpr std::uint32_t kConns = 8;
  for (std::uint32_t c = 0; c < kConns; ++c)
    rec.note_connection(c, static_cast<iba::ServiceLevel>(c % 10),
                        /*qos=*/true, /*deadline=*/5000);
  const iba::Cycle end = sample_every * boundaries;
  std::uint64_t ring = 0;
  constexpr std::size_t kRing = 1u << 12;
  std::vector<iba::Cycle> delays(kRing);
  {
    util::Xoshiro256 rng(29);
    for (auto& d : delays) d = rng.between(100, 6000);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < deliveries; ++i) {
    const iba::Cycle t = i * end / deliveries;
    if (t > rec.next_due()) rec.advance_to(t);
    injected.inc();
    obs::t_series_lane = i % lanes;
    rec.record_delivery(static_cast<std::uint32_t>(i % kConns),
                        static_cast<iba::ServiceLevel>(i % 10),
                        delays[ring++ & (kRing - 1)], /*contracted=*/5000);
  }
  obs::t_series_lane = 0;
  (void)rec.finalize(end);
  return static_cast<double>(deliveries) / seconds_since(t0);
}

/// The per-shard registry fold cost: Snapshot::merge over `parts` shard
/// snapshots shaped like a real run's envelope (shared counter/gauge names,
/// per-shard histogram bins) — the work the profile probe does once per
/// telemetry_snapshot() call when the engine is engaged.
ShardObsBenchResult measure_shard_obs(std::uint64_t deliveries,
                                      std::uint64_t folds) {
  ShardObsBenchResult res;
  // 256 boundaries: the pure sampling regime, no decimation noise.
  res.single_lane_dps =
      measure_lane_fold(deliveries, /*sample_every=*/4096,
                        /*boundaries=*/256, /*lanes=*/1);
  res.multi_lane_dps =
      measure_lane_fold(deliveries, /*sample_every=*/4096,
                        /*boundaries=*/256, /*lanes=*/4);
  if (res.multi_lane_dps > 0.0)
    res.lane_fold_overhead_pct =
        100.0 * (res.single_lane_dps / res.multi_lane_dps - 1.0);

  constexpr unsigned kParts = 4;
  std::vector<obs::Snapshot> parts(kParts);
  for (unsigned s = 0; s < kParts; ++s) {
    auto& p = parts[s];
    for (unsigned c = 0; c < 32; ++c)
      p.add_counter("queue.instrument_" + std::to_string(c), 1000 + c + s);
    for (unsigned g = 0; g < 8; ++g)
      p.merge_gauge("sim.gauge_" + std::to_string(g), double(g + s),
                    obs::MergePolicy::kMax);
    std::uint64_t bins[16] = {};
    bins[s] = 100 + s;
    for (unsigned h = 0; h < 4; ++h)
      p.add_histogram("shard.hist_" + std::to_string(h), bins, 16);
  }
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t f = 0; f < folds; ++f) {
    const auto merged = obs::Snapshot::merge(parts);
    sink += merged.counters.size();
  }
  const double secs = seconds_since(t0);
  volatile std::uint64_t keep = sink;
  (void)keep;
  res.snapshot_folds_per_sec = static_cast<double>(folds) / secs;
  res.snapshot_fold_us = secs * 1e6 / static_cast<double>(folds);
  return res;
}

struct ChannelBenchResult {
  double thread_xfer_per_sec = 0.0;  ///< Raw SPSC ring, producer vs consumer.
  double burst_per_sec = 0.0;        ///< ShardChannel window bursts w/ spill.
  double merge_per_sec = 0.0;        ///< Promote: sort + keyed queue insert.
  std::uint64_t spilled = 0;         ///< Burst items that overflowed the ring.
};

/// Benchmarks the cross-shard channel exactly as the engine uses it
/// (sim/shard.cpp): a producer journals pushes and hands pointers through
/// the SPSC ring; after the window barrier the consumer drains, sorts by
/// the final (time, key) and inserts into its event queue.
ChannelBenchResult measure_shard_channel(std::uint64_t items) {
  ChannelBenchResult res;

  // Raw ring, two threads: the in-window transfer path. On fewer cores
  // than threads this measures the yield-heavy oversubscribed regime —
  // still the regime the engine would run in there.
  {
    util::SpscQueue<sim::Push*> ring(1024);
    std::vector<sim::Push> pool(4096);
    const auto t0 = std::chrono::steady_clock::now();
    std::thread producer([&] {
      for (std::uint64_t i = 0; i < items; ++i) {
        sim::Push* p = &pool[i & 4095];
        while (!ring.try_push(std::move(p))) std::this_thread::yield();
      }
    });
    std::uint64_t got = 0;
    sim::Push* v = nullptr;
    while (got < items) {
      if (ring.try_pop(v))
        ++got;
      else
        std::this_thread::yield();
    }
    producer.join();
    res.thread_xfer_per_sec =
        static_cast<double>(items) / seconds_since(t0);
  }

  // Window bursts through a ShardChannel: push a whole window's worth
  // (beyond the ring, so the spill engages), then drain ring + spill —
  // the producer-finishes-then-consumer-drains shape the barrier imposes.
  constexpr std::size_t kBurst = 4096;
  {
    sim::ShardChannel ch;  // default 1024-slot ring: 3/4 of a burst spills
    std::vector<sim::Push> journal(kBurst);
    std::vector<sim::Push*> inbox;
    inbox.reserve(kBurst);
    const std::uint64_t rounds = std::max<std::uint64_t>(1, items / kBurst);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (auto& p : journal) ch.push(&p);
      inbox.clear();
      ch.drain(inbox);
      if (inbox.size() != kBurst) {
        std::cerr << "error: shard channel lost items\n";
        std::exit(2);
      }
    }
    res.burst_per_sec =
        static_cast<double>(rounds * kBurst) / seconds_since(t0);
    res.spilled = kBurst - std::min<std::uint64_t>(kBurst, 1024);
  }

  // Promote: the inbox sorted by final (time, key), then keyed insertion
  // into the event queue and a full in-order drain (the next window's pops).
  {
    sim::EventQueue q(sim::EventQueueImpl::kWheel);
    std::vector<sim::Push> journal(kBurst);
    std::vector<sim::Push*> inbox(kBurst);
    util::Xoshiro256 rng(31);
    const std::uint64_t rounds =
        std::max<std::uint64_t>(1, items / (kBurst * 8));
    iba::Cycle base = 0;
    std::uint64_t key = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      // Arrival order is channel order, i.e. effectively random in time.
      for (std::size_t i = 0; i < kBurst; ++i) {
        sim::Push& p = journal[i];
        p.ev.time = base + rng.between(0, 512);
        p.ev.type = sim::EventType::kLinkDeliver;
        p.ev.seq = key + 2 * i;  // unique keys in the doubled domain
        p.seq = p.ev.seq;
        p.origin = base;
        inbox[i] = &p;
      }
      key += 2 * kBurst;
      std::sort(inbox.begin(), inbox.end(),
                [](const sim::Push* a, const sim::Push* b) {
                  return a->ev.time != b->ev.time ? a->ev.time < b->ev.time
                                                  : a->seq < b->seq;
                });
      for (sim::Push* p : inbox) q.push_keyed(p->ev, p->origin, true);
      iba::Cycle prev = base;
      for (std::size_t i = 0; i < kBurst; ++i) {
        const sim::Event e = q.pop();
        if (e.time < prev) {
          std::cerr << "error: promote produced out-of-order pops\n";
          std::exit(2);
        }
        prev = e.time;
      }
      base += 600;  // next window starts past every event of this one
    }
    res.merge_per_sec =
        static_cast<double>(rounds * kBurst) / seconds_since(t0);
  }
  return res;
}

struct SnapshotBenchResult {
  std::uint64_t connections = 0;   ///< Live connections actually admitted.
  std::uint64_t bytes = 0;         ///< Sealed snapshot size.
  double save_ms = 0.0;            ///< save_world: serialize + CRC + seal.
  double restore_ms = 0.0;         ///< restore_world: parse, apply, audit,
                                   ///< re-serialize bit-exactness proof.
  double audit_ms = 0.0;           ///< One standalone audit_full pass.
};

/// Cost of a crash-consistent control-plane snapshot at a given live
/// population: a 64-host star fabric is filled with `target` tiny guaranteed
/// connections (round-robin pairs spread the per-port load), then the
/// save_world / restore_world / audit_full wall costs are measured.
SnapshotBenchResult measure_snapshot_roundtrip(std::uint64_t target) {
  constexpr unsigned kHosts = 64;
  network::FabricGraph graph;
  const iba::Link link{iba::LinkRate::k4x, 2};
  const auto sw = graph.add_switch(kHosts);
  for (unsigned h = 0; h < kHosts; ++h) {
    const auto host = graph.add_host();
    graph.connect(host, 0, sw, static_cast<iba::PortIndex>(h), link);
  }
  subnet::SubnetManager sm(graph);
  qos::AdmissionControl::Config ac;
  ac.seed = 41;
  qos::AdmissionControl admission(graph, sm.routes(), qos::paper_catalogue(),
                                  ac);

  const auto hosts = graph.hosts();
  // Distance-64 SLs: one table entry per sequence and weight-1 sharing, so
  // six-figure live populations fit the 64-entry tables.
  constexpr iba::ServiceLevel kSls[] = {6, 7, 8, 9};
  SnapshotBenchResult res;
  for (std::uint64_t i = 0; res.connections < target; ++i) {
    if (i > target * 2) break;  // table space exhausted: report what fits
    qos::ConnectionRequest req;
    req.src_host = hosts[i % kHosts];
    req.dst_host = hosts[(i + 1 + i / kHosts) % kHosts];
    if (req.src_host == req.dst_host) continue;
    req.sl = kSls[i % std::size(kSls)];
    req.max_distance =
        qos::find_sl(admission.catalogue(), req.sl)->max_distance;
    req.wire_mbps = 0.05;  // weight-1 requirements: sharing packs densely
    if (admission.request(req)) ++res.connections;
  }

  const control::World world{&admission, nullptr, nullptr, nullptr};
  auto t0 = std::chrono::steady_clock::now();
  const auto blob = control::save_world(/*now=*/0, /*run_seed=*/41, world);
  res.save_ms = seconds_since(t0) * 1e3;
  res.bytes = blob.size();

  qos::AdmissionControl loaded(graph, sm.routes(), qos::paper_catalogue(),
                               ac);
  const control::World fresh{&loaded, nullptr, nullptr, nullptr};
  t0 = std::chrono::steady_clock::now();
  (void)control::restore_world(blob, /*run_seed=*/41, fresh);
  res.restore_ms = seconds_since(t0) * 1e3;

  t0 = std::chrono::steady_clock::now();
  std::string why;
  if (!loaded.audit_full(&why)) {
    std::cerr << "error: snapshot bench audit failed: " << why << "\n";
    std::exit(2);
  }
  res.audit_ms = seconds_since(t0) * 1e3;
  return res;
}

int run_json_harness(int argc, const char* const* argv) {
  const util::Cli cli(argc, argv);
  (void)cli.get_bool("json", true);  // consumed; routing happened in main()
  const std::string out_path = cli.get("out", "BENCH_micro.json");
  const auto depth =
      static_cast<std::size_t>(cli.get_int("queue-depth", 20000));
  const auto queue_events =
      static_cast<std::uint64_t>(cli.get_int("queue-events", 2'000'000));
  const auto queue_reps =
      static_cast<unsigned>(cli.get_int("queue-reps", 3));
  const auto arb_decisions =
      static_cast<std::uint64_t>(cli.get_int("arb-decisions", 2'000'000));
  const bool skip_sim = cli.get_bool("skip-sim", false);
  const auto series_deliveries = static_cast<std::uint64_t>(
      cli.get_int("series-deliveries", 2'000'000));
  const auto channel_items = static_cast<std::uint64_t>(
      cli.get_int("channel-items", 4'000'000));
  const auto shard_obs_folds = static_cast<std::uint64_t>(
      cli.get_int("shard-obs-folds", 50'000));
  const auto snapshot_small = static_cast<std::uint64_t>(
      cli.get_int("snapshot-small", 1'000));
  const auto snapshot_large = static_cast<std::uint64_t>(
      cli.get_int("snapshot-large", 100'000));

  bench::PaperRunConfig sim_cfg;
  sim_cfg.switches = static_cast<unsigned>(cli.get_int("switches", 16));
  sim_cfg.min_rx_packets =
      static_cast<std::uint64_t>(cli.get_int("packets", 10));
  sim_cfg.warmup = static_cast<iba::Cycle>(cli.get_int("warmup", 500'000));
  cli.warn_unused(std::cerr);

  std::cerr << "[bench_micro] queue replay (depth " << depth << ", "
            << queue_events << " events, best of " << queue_reps
            << ") x2 impls...\n";
  const QueueResult wheel = measure_queue(sim::EventQueueImpl::kWheel, depth,
                                          queue_events, /*seed=*/2027,
                                          queue_reps);
  const QueueResult heap = measure_queue(sim::EventQueueImpl::kBinaryHeap,
                                         depth, queue_events, /*seed=*/2027,
                                         queue_reps);
  const bool order_match = wheel.checksum == heap.checksum;

  SimResult sim_wheel, sim_heap;
  if (!skip_sim) {
    std::cerr << "[bench_micro] fig4-style sim, wheel queue...\n";
    sim_wheel = measure_sim(sim_cfg, "wheel");
    std::cerr << "[bench_micro] fig4-style sim, heap queue...\n";
    sim_heap = measure_sim(sim_cfg, "heap");
  }

  std::cerr << "[bench_micro] arbiter decision rates...\n";
  iba::VlArbitrationTable dense;
  for (unsigned i = 0; i < iba::kArbTableEntries; ++i)
    dense.set_high_entry(
        i, iba::ArbTableEntry{static_cast<iba::VirtualLane>(i % 10),
                              static_cast<std::uint8_t>(100 + i % 50)});
  iba::ReadyBytes dense_ready{};
  for (unsigned vl = 0; vl < 10; vl += 2) dense_ready[vl] = 282;

  iba::VlArbitrationTable sparse;
  for (unsigned i = 0; i < iba::kArbTableEntries; i += 16)
    sparse.set_high_entry(i, iba::ArbTableEntry{3, 10});
  iba::ReadyBytes sparse_ready{};
  sparse_ready[3] = 4122;

  const double dense_rate = measure_arbiter(dense, dense_ready, arb_decisions);
  const double sparse_rate =
      measure_arbiter(sparse, sparse_ready, arb_decisions);

  std::cerr << "[bench_micro] series recorder (" << series_deliveries
            << " deliveries) x2 regimes...\n";
  // 256 boundaries stay under the 512-window ring: the pure sampling path.
  const SeriesBenchResult series_flat =
      measure_series(series_deliveries, /*sample_every=*/4096,
                     /*boundaries=*/256);
  // 16384 boundaries force ~5 decimation passes over a full ring.
  const SeriesBenchResult series_decim =
      measure_series(series_deliveries, /*sample_every=*/4096,
                     /*boundaries=*/16384);

  std::cerr << "[bench_micro] shard channel (" << channel_items
            << " items) x3 paths...\n";
  const ChannelBenchResult channel = measure_shard_channel(channel_items);

  std::cerr << "[bench_micro] shard observability (lane fold + "
            << shard_obs_folds << " snapshot folds)...\n";
  const ShardObsBenchResult shard_obs =
      measure_shard_obs(series_deliveries, shard_obs_folds);

  std::cerr << "[bench_micro] snapshot round-trip at " << snapshot_small
            << " and " << snapshot_large << " live connections...\n";
  const SnapshotBenchResult snap_small =
      measure_snapshot_roundtrip(snapshot_small);
  const SnapshotBenchResult snap_large =
      measure_snapshot_roundtrip(snapshot_large);

  obs::Report report("bench_micro");
  report.config("queue_depth", static_cast<std::uint64_t>(depth));
  report.config("queue_events", queue_events);
  report.config("queue_reps", static_cast<std::uint64_t>(queue_reps));
  report.config("arb_decisions", arb_decisions);
  report.config("switches", static_cast<std::uint64_t>(sim_cfg.switches));
  report.config("skip_sim", skip_sim);
  report.figure("queue", [&](util::JsonWriter& w) {
    const auto queue_obj = [&w](const QueueResult& r) {
      w.begin_object();
      w.kv("events_per_sec", r.events_per_sec);
      w.kv("push_ns", r.push_ns);
      w.kv("pop_ns", r.pop_ns);
      w.end_object();
    };
    w.begin_object();
    w.kv("workload", "fig4-shaped event stream");
    w.kv("depth", static_cast<std::uint64_t>(depth));
    w.kv("events", queue_events);
    w.key("wheel");
    queue_obj(wheel);
    w.key("heap");
    queue_obj(heap);
    w.kv("speedup", wheel.events_per_sec / heap.events_per_sec);
    w.kv("pop_order_identical", order_match);
    w.end_object();
  });
  if (!skip_sim) {
    report.figure("sim_fig4", [&](util::JsonWriter& w) {
      const auto sim_obj = [&w](const SimResult& r) {
        w.begin_object();
        w.kv("events", r.events);
        w.kv("seconds", r.seconds);
        w.kv("events_per_sec", r.events_per_sec);
        w.end_object();
      };
      w.begin_object();
      w.kv("switches", static_cast<std::uint64_t>(sim_cfg.switches));
      w.key("wheel");
      sim_obj(sim_wheel);
      w.key("heap");
      sim_obj(sim_heap);
      w.kv("speedup", sim_wheel.events_per_sec / sim_heap.events_per_sec);
      w.kv("events_identical", sim_wheel.events == sim_heap.events);
      w.end_object();
    });
  }
  report.figure("arbiter", [&](util::JsonWriter& w) {
    w.begin_object();
    w.kv("dense_decisions_per_sec", dense_rate);
    w.kv("sparse_decisions_per_sec", sparse_rate);
    w.end_object();
  });
  report.figure("series", [&](util::JsonWriter& w) {
    const auto series_obj = [&w](const SeriesBenchResult& r) {
      w.begin_object();
      w.kv("deliveries_per_sec", r.deliveries_per_sec);
      w.kv("samples_per_sec", r.samples_per_sec);
      w.kv("boundaries", r.boundaries);
      w.kv("decimations", r.decimations);
      w.end_object();
    };
    w.begin_object();
    w.kv("deliveries", series_deliveries);
    w.key("flat");
    series_obj(series_flat);
    w.key("decimating");
    series_obj(series_decim);
    // >1 means the decimation path costs measurable per-delivery overhead.
    w.kv("decimation_slowdown",
         series_flat.deliveries_per_sec / series_decim.deliveries_per_sec);
    w.end_object();
  });
  report.figure("shard_channel", [&](util::JsonWriter& w) {
    w.begin_object();
    w.kv("items", channel_items);
    w.kv("thread_xfer_per_sec", channel.thread_xfer_per_sec);
    w.kv("burst_per_sec", channel.burst_per_sec);
    w.kv("spilled_per_burst", channel.spilled);
    w.kv("merge_per_sec", channel.merge_per_sec);
    w.end_object();
  });
  report.figure("shard_obs", [&](util::JsonWriter& w) {
    w.begin_object();
    w.kv("deliveries", series_deliveries);
    w.kv("single_lane_deliveries_per_sec", shard_obs.single_lane_dps);
    w.kv("four_lane_deliveries_per_sec", shard_obs.multi_lane_dps);
    // What the per-window lane fold adds per delivery; the acceptance
    // target is <2% at 4 shards (wall clock, so report-only — not a gate).
    w.kv("lane_fold_overhead_pct", shard_obs.lane_fold_overhead_pct);
    w.kv("snapshot_parts", std::uint64_t{4});
    w.kv("snapshot_folds", shard_obs_folds);
    w.kv("snapshot_folds_per_sec", shard_obs.snapshot_folds_per_sec);
    w.kv("snapshot_fold_us", shard_obs.snapshot_fold_us);
    w.end_object();
  });
  report.figure("snapshot_roundtrip", [&](util::JsonWriter& w) {
    const auto snap_obj = [&w](const SnapshotBenchResult& r) {
      w.begin_object();
      w.kv("connections", r.connections);
      w.kv("bytes", r.bytes);
      w.kv("save_ms", r.save_ms);
      w.kv("restore_ms", r.restore_ms);
      w.kv("audit_ms", r.audit_ms);
      w.end_object();
    };
    w.begin_object();
    w.key("small");
    snap_obj(snap_small);
    w.key("large");
    snap_obj(snap_large);
    w.end_object();
  });

  if (out_path == "-") {
    report.write(std::cout, /*pretty=*/true);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    report.write(out, /*pretty=*/true);
    std::cout << "wrote " << out_path << "\n";
  }

  std::cout << "queue   wheel " << wheel.events_per_sec / 1e6 << " Mev/s, heap "
            << heap.events_per_sec / 1e6
            << " Mev/s, speedup " << wheel.events_per_sec / heap.events_per_sec
            << "x, order " << (order_match ? "identical" : "DIVERGED") << "\n";
  if (!skip_sim)
    std::cout << "sim     wheel " << sim_wheel.events_per_sec / 1e6
              << " Mev/s, heap " << sim_heap.events_per_sec / 1e6
              << " Mev/s, speedup "
              << sim_wheel.events_per_sec / sim_heap.events_per_sec << "x\n";
  std::cout << "arbiter dense " << dense_rate / 1e6 << " Mdec/s, sparse "
            << sparse_rate / 1e6 << " Mdec/s\n";
  std::cout << "series  flat " << series_flat.deliveries_per_sec / 1e6
            << " Mdlv/s, decimating "
            << series_decim.deliveries_per_sec / 1e6 << " Mdlv/s ("
            << series_decim.decimations << " decimations)\n";
  std::cout << "channel xfer " << channel.thread_xfer_per_sec / 1e6
            << " Mit/s, burst " << channel.burst_per_sec / 1e6
            << " Mit/s, merge " << channel.merge_per_sec / 1e6 << " Mit/s\n";
  std::cout << "shardobs lane fold " << shard_obs.lane_fold_overhead_pct
            << "% overhead at 4 lanes, snapshot fold "
            << shard_obs.snapshot_fold_us << " us (4 parts)\n";
  std::cout << "snapshot " << snap_small.connections << " conns "
            << snap_small.bytes / 1024 << " KiB save " << snap_small.save_ms
            << " ms restore " << snap_small.restore_ms << " ms; "
            << snap_large.connections << " conns "
            << snap_large.bytes / 1024 << " KiB save " << snap_large.save_ms
            << " ms restore " << snap_large.restore_ms << " ms\n";
  return order_match ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--json")
      return run_json_harness(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
