// Extension of Table 2: all four IBA MTUs rather than only the paper's
// small/large pair. Shows the overhead/serialization trade across the whole
// range the specification permits. The four experiments run in parallel via
// the sweep engine (--jobs N, see docs/SWEEP.md); each MTU keeps the same
// base seed so every variant runs on the same fabric.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  const auto base = bench::config_from_cli(cli);

  if (!sf.json) std::cout << "=== MTU sweep: Table 2 across every IBA MTU ===\n\n";

  const iba::Mtu mtus[] = {iba::Mtu::kMtu256, iba::Mtu::kMtu1024,
                           iba::Mtu::kMtu2048, iba::Mtu::kMtu4096};
  std::vector<bench::PaperRunConfig> cfgs;
  for (const auto mtu : mtus) {
    auto cfg = base;
    cfg.mtu = mtu;
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "mtu"));

  int rc = 0;
  if (sf.json) {
    obs::Report report("mtu_sweep");
    bench::echo_config(report, base);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("mtus", [&](util::JsonWriter& w) {
      w.begin_array();
      for (const auto& run : sweep.runs) {
        std::uint64_t misses = 0;
        for (const auto& c : run->sim->metrics().connections)
          misses += c.deadline_misses;
        w.begin_object();
        w.kv("mtu_bytes",
             static_cast<std::uint64_t>(iba::mtu_bytes(run->cfg.mtu)));
        w.kv("efficiency", iba::mtu_efficiency(run->cfg.mtu));
        w.kv("connections", static_cast<std::uint64_t>(run->workload.accepted));
        w.kv("deadline_misses", misses);
        w.key("table2");
        bench::write_table2(w, run->table2());
        w.end_object();
      }
      w.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"MTU", "efficiency", "connections",
                              "injected (B/cyc/node)", "delivered (B/cyc/node)",
                              "host util (%)", "switch util (%)", "misses"});
    for (const auto& run : sweep.runs) {
      const auto mtu = run->cfg.mtu;
      const auto t2 = run->table2();
      std::uint64_t misses = 0;
      for (const auto& c : run->sim->metrics().connections)
        misses += c.deadline_misses;
      table.add_row(
          {std::to_string(iba::mtu_bytes(mtu)),
           util::TablePrinter::pct(iba::mtu_efficiency(mtu), 1),
           std::to_string(run->workload.accepted),
           util::TablePrinter::num(t2.injected_bytes_per_cycle_per_node, 4),
           util::TablePrinter::num(t2.delivered_bytes_per_cycle_per_node, 4),
           util::TablePrinter::num(t2.host_utilization * 100.0, 2),
           util::TablePrinter::num(t2.switch_utilization * 100.0, 2),
           std::to_string(misses)});
      std::cerr << "[MTU " << iba::mtu_bytes(mtu)
                << "] window=" << run->summary.window_cycles
                << (run->summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
