#include "sweep_runner.hpp"

#include <chrono>
#include <iostream>

#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace ibarb::bench {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

SweepOptions sweep_options_from_cli(const util::Cli& cli, std::string label) {
  SweepOptions opts;
  opts.jobs = cli.jobs();
  if (cli.has("sweep-seed"))
    opts.base_seed =
        static_cast<std::uint64_t>(cli.get_int("sweep-seed", 0));
  opts.label = std::move(label);
  if (cli.get_bool("quiet", false)) opts.timing = false;
  return opts;
}

std::uint64_t derive_run_seed(std::uint64_t base_seed, std::size_t run_index) {
  // One SplitMix64 step over base ^ index: nearby indices land in unrelated
  // parts of the xoshiro seed space (ISSUE 1 / docs/SWEEP.md).
  return util::SplitMix64(base_seed ^ static_cast<std::uint64_t>(run_index))
      .next();
}

SweepResult run_sweep(const std::vector<PaperRunConfig>& cfgs,
                      const SweepOptions& opts) {
  SweepResult result;
  const std::size_t n = cfgs.size();
  result.jobs = opts.jobs == 0 ? util::default_jobs() : opts.jobs;
  // More lanes than runs only spawns idle threads.
  if (result.jobs > n && n > 0) result.jobs = static_cast<unsigned>(n);
  result.runs.resize(n);
  result.run_ms.assign(n, 0.0);

  const auto sweep_start = Clock::now();
  util::parallel_for(result.jobs, n, [&](std::size_t i) {
    auto cfg = cfgs[i];
    if (opts.base_seed) cfg.seed = derive_run_seed(*opts.base_seed, i);
    const auto run_start = Clock::now();
    result.runs[i] = std::make_unique<PaperRun>(cfg);
    result.run_ms[i] = ms_since(run_start);
  });
  result.wall_ms = ms_since(sweep_start);

  if (opts.timing) {
    double sum_ms = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum_ms += result.run_ms[i];
      std::cerr << "[sweep:" << opts.label << "] run " << i << " (seed "
                << result.runs[i]->cfg.seed << ") "
                << util::TablePrinter::num(result.run_ms[i], 1) << " ms\n";
    }
    // sum/wall is the average run overlap; it equals the wall-clock speedup
    // only when each lane has a core of its own.
    std::cerr << "[sweep:" << opts.label << "] " << n << " runs on "
              << result.jobs << " lane(s): run-sum "
              << util::TablePrinter::num(sum_ms, 1) << " ms, wall "
              << util::TablePrinter::num(result.wall_ms, 1) << " ms";
    if (result.wall_ms > 0.0)
      std::cerr << " (effective parallelism "
                << util::TablePrinter::num(sum_ms / result.wall_ms, 2) << "x)";
    std::cerr << "\n";
  }
  return result;
}

}  // namespace ibarb::bench
