// Fault-storm benchmark: the robustness counterpart of the paper benches.
//
// The fabric is a dual-spine tree with asymmetric redundancy: spine 0's
// links are 4x, the backup spines' are 1x. The up*/down* routes prefer the
// fast spine, so a primary-link failure reroutes onto a quarter of the
// bandwidth — exactly the regime where graceful degradation must shed
// best-effort load to keep every DBTS/DB guarantee intact. The fabric
// carries guaranteed DBTS/DB connections, sheddable best-effort
// connections and two RC queue pairs, then a deterministic fault storm is
// armed on it: link flaps, stuck/slow ports, corruption and drop windows
// (judged by the real ICRC/VCRC path), and misbehaving best-effort
// sources. The RecoveryCoordinator re-sweeps, reroutes and
// degrades gracefully; the RC sessions recover CRC-rejected packets through
// go-back-N with capped exponential backoff.
//
// What the report must show (the robustness headline):
//   * zero DBTS/DB guarantee violations (deadline misses) through the storm;
//   * zero guarantee revocations (no guaranteed connection refused while
//     sheddable best-effort capacity remained);
//   * best-effort throughput degrading vs the no-fault baseline;
//   * every injected corruption CRC-detected, none escaping, and the RC
//     sessions completing despite them.
//
// Determinism: per-run state is fully self-contained and seeds derive from
// (seed, run index), so `--runs N --jobs J` prints byte-identical output
// for every J, and two invocations with the same flags are bit-identical.
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "faults/rc_session.hpp"
#include "faults/recovery.hpp"
#include "network/graph.hpp"
#include "qos/admission.hpp"
#include "qos/traffic_classes.hpp"
#include "report_common.hpp"
#include "sim/trace.hpp"
#include "subnet/subnet_manager.hpp"
#include "sweep_runner.hpp"
#include "traffic/cbr.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

struct BenchConfig {
  unsigned spines = 2;
  unsigned leaves = 4;
  unsigned hosts_per_leaf = 2;
  iba::Cycle length = 3'000'000;
  std::uint64_t seed = 1;
  std::uint64_t storm_seed = 0;  ///< 0 = derive from run seed.
  std::string plan_spec;         ///< Overrides the random storm if set.
  unsigned runs = 1;
  unsigned jobs = 1;
  bool with_baseline = true;
  bool json = false;
  /// Trace-ring size for run 0 of the storm (0 = off); set by --trace-out.
  std::size_t trace_capacity = 0;
  /// Series sampling cadence for run 0 of the storm (--sample-every).
  std::uint64_t sample_every = 0;
  /// Wall-clock self-profiler for run 0 of the storm (--profile).
  bool profile = false;
};

struct ClassAgg {
  std::uint64_t tx = 0;
  std::uint64_t rx = 0;
  std::uint64_t dropped = 0;
  std::uint64_t misses = 0;
};

struct RunResult {
  std::uint64_t run_seed = 0;
  unsigned guaranteed = 0;       ///< Connections admitted at setup.
  unsigned besteffort = 0;
  ClassAgg dbts;                 ///< SLs 0-5.
  ClassAgg db;                   ///< SLs 6-9.
  ClassAgg be;                   ///< SLs 10-12 (CBR background only).
  faults::FaultStats fault;
  faults::RecoveryStats recovery;
  std::uint64_t rc_messages = 0;
  std::uint64_t rc_recovered = 0;
  std::uint64_t rc_retransmits = 0;
  iba::Cycle rc_max_recovery = 0;
  bool rc_failed = false;
  std::uint64_t events = 0;
  std::string plan;              ///< The storm actually applied.
  obs::Snapshot telemetry;       ///< Per-run registry snapshot.
  std::optional<obs::SeriesData> series;  ///< Engaged on the observed run.
  sim::PacketTrace trace;        ///< Populated only when tracing this run.
  std::vector<obs::PhaseSpan> fault_spans;  ///< Fault windows, for the trace.
};

constexpr iba::ServiceLevel kGuaranteedSls[] = {2, 3, 4, 5, 6, 7, 8, 9};

/// Dual-spine tree with asymmetric redundancy: spine 0 (node 0) attaches
/// every leaf over 4x links, the remaining spines over 1x. Host links are
/// 4x so leaf ingress is never the bottleneck. Routing prefers the fast
/// spine; losing one of its links moves that leaf's traffic onto a quarter
/// of the reservable bandwidth.
network::FabricGraph make_asym_fabric(const BenchConfig& bc) {
  network::FabricGraph g;
  const iba::Link fast{iba::LinkRate::k4x, 2};
  const iba::Link slow{iba::LinkRate::k1x, 2};
  std::vector<iba::NodeId> spine(bc.spines);
  for (auto& s : spine) s = g.add_switch(bc.leaves);
  std::vector<iba::NodeId> leaf(bc.leaves);
  for (auto& l : leaf) l = g.add_switch(bc.spines + bc.hosts_per_leaf);
  for (unsigned l = 0; l < bc.leaves; ++l)
    for (unsigned t = 0; t < bc.spines; ++t)
      g.connect(leaf[l], static_cast<iba::PortIndex>(t), spine[t],
                static_cast<iba::PortIndex>(l), t == 0 ? fast : slow);
  for (const auto l : leaf)
    for (unsigned h = 0; h < bc.hosts_per_leaf; ++h) {
      const auto host = g.add_host();
      g.connect(host, 0, l, static_cast<iba::PortIndex>(bc.spines + h),
                fast);
    }
  return g;
}

/// One self-contained experiment. `faulty` false gives the baseline run:
/// identical fabric, workload and seeds, no fault plan armed. `observe`
/// enables the per-run observability extras (packet trace, time-series,
/// profiler) from the bench config — only storm run 0 sets it, so the
/// exported artefacts come from one deterministic run.
RunResult run_one(const BenchConfig& bc, std::uint64_t run_seed, bool faulty,
                  bool observe = false) {
  RunResult res;
  res.run_seed = run_seed;

  const auto graph = make_asym_fabric(bc);
  subnet::SubnetManager sm(graph);
  qos::AdmissionControl::Config ac;
  ac.seed = run_seed;
  qos::AdmissionControl admission(graph, sm.routes(), qos::paper_catalogue(),
                                  ac);
  sim::SimConfig scfg;
  scfg.seed = run_seed ^ 0x5117ull;
  scfg.trace_capacity = observe ? bc.trace_capacity : 0;
  scfg.sample_every = observe ? bc.sample_every : 0;
  scfg.profile = observe && bc.profile;
  sim::Simulator sim(graph, sm.routes(), scfg);

  const auto hosts = graph.hosts();
  util::Xoshiro256 rng(run_seed * 2 + 1);
  const auto random_pair = [&](iba::NodeId& src, iba::NodeId& dst) {
    src = hosts[rng.below(hosts.size())];
    do {
      dst = hosts[rng.below(hosts.size())];
    } while (dst == src);
  };

  // --- Workload ------------------------------------------------------------
  std::vector<qos::ConnectionId> g_ids;
  std::vector<std::uint32_t> g_flows;
  std::vector<iba::ServiceLevel> g_sls;
  for (unsigned i = 0; i < 2 * std::size(kGuaranteedSls); ++i) {
    const auto sl = kGuaranteedSls[i % std::size(kGuaranteedSls)];
    qos::ConnectionRequest req;
    random_pair(req.src_host, req.dst_host);
    req.sl = sl;
    req.max_distance = qos::find_sl(admission.catalogue(), sl)->max_distance;
    req.wire_mbps = 40 + static_cast<double>(rng.below(40));
    const auto id = admission.request(req);
    if (!id) continue;  // table space ran out on a hot port: skip
    auto spec = traffic::make_cbr_flow(req.src_host, req.dst_host, sl,
                                       /*payload=*/256, req.wire_mbps,
                                       admission.connection(*id).deadline,
                                       run_seed * 100 + i);
    g_ids.push_back(*id);
    g_flows.push_back(sim.add_flow(spec));
    g_sls.push_back(sl);
  }
  res.guaranteed = static_cast<unsigned>(g_ids.size());

  // Best-effort background loaded close to saturation: losing a leaf uplink
  // then makes the surviving one oversubscribed, so the recovery pass must
  // visibly degrade — suspend or shed — BE connections while every
  // guaranteed one still fits.
  std::vector<qos::ConnectionId> b_ids;
  std::vector<std::uint32_t> b_flows;
  for (unsigned i = 0; i < 16; ++i) {
    qos::ConnectionRequest req;
    random_pair(req.src_host, req.dst_host);
    // Aim the first few at leaf 0's hosts: its combined ingress demand then
    // exceeds one downlink's reservable bandwidth, so when the storm takes
    // a spine->leaf0 link down the degradation machinery has real work.
    if (i < 6 && bc.hosts_per_leaf >= 2) {
      req.dst_host = hosts[i % bc.hosts_per_leaf];
      if (req.src_host == req.dst_host) req.src_host = hosts.back();
    }
    req.sl = static_cast<iba::ServiceLevel>(10 + i % 3);
    req.wire_mbps = 550;
    const auto id = admission.request_best_effort(req);
    if (!id) continue;  // greedy fill: stop charging a saturated path
    auto spec = traffic::make_cbr_flow(req.src_host, req.dst_host, req.sl,
                                       /*payload=*/256, req.wire_mbps,
                                       /*deadline=*/0, run_seed * 200 + i);
    spec.qos = false;
    b_ids.push_back(*id);
    b_flows.push_back(sim.add_flow(spec));
  }
  res.besteffort = static_cast<unsigned>(b_ids.size());

  // --- RC sessions ---------------------------------------------------------
  std::vector<std::unique_ptr<faults::RcSession>> sessions;
  std::vector<iba::NodeId> rc_dsts;
  for (int s = 0; s < 2; ++s) {
    faults::RcSession::Config rc;
    random_pair(rc.src_host, rc.dst_host);
    rc.sl = static_cast<iba::ServiceLevel>(10 + s);
    rc.message_bytes = 2048;
    rc.messages = 48;
    rc.message_interval = bc.length / 64;
    rc.rc.retransmit_timeout = 60'000;
    rc.rc.max_retries = 16;
    rc.seed = run_seed * 300 + static_cast<std::uint64_t>(s);
    sessions.push_back(std::make_unique<faults::RcSession>(sim, rc));
    rc_dsts.push_back(rc.dst_host);
  }
  sim.set_delivery_listener([&sessions](const iba::Packet& p, iba::Cycle t) {
    for (auto& s : sessions)
      if (s->wants(p)) {
        s->on_delivery(p, t);
        return;
      }
  });

  // --- Fault plan ----------------------------------------------------------
  faults::FaultPlan plan;
  if (faulty) {
    if (!bc.plan_spec.empty()) {
      plan = faults::FaultPlan::parse(bc.plan_spec);
    } else {
      faults::StormConfig sc;
      sc.seed = bc.storm_seed != 0 ? bc.storm_seed : run_seed ^ 0x570Bull;
      sc.start = bc.length / 10;
      sc.length = bc.length * 7 / 10;
      sc.link_flaps = 2;
      sc.stuck_ports = 1;
      sc.slow_ports = 1;
      sc.corrupt_windows = 2;
      sc.drop_windows = 1;
      if (!b_flows.empty()) {
        sc.first_flow = b_flows.front();
        sc.flows = static_cast<std::uint32_t>(b_flows.size());
      }
      plan = faults::FaultPlan::random_storm(graph, sc);
    }
    // Guarantee the CRC-recovery path is exercised: short all-corrupting
    // windows right at each RC destination's host port.
    std::vector<faults::FaultEvent> certain;
    // And guarantee the degradation path is exercised: a long outage of the
    // first spine's downlink to leaf 0 (node order: spines first, port p of
    // a spine faces leaf p), the leaf the best-effort load converges on.
    {
      faults::FaultEvent ev;
      ev.kind = faults::FaultKind::kLinkFlap;
      ev.at = bc.length * 45 / 100;
      ev.duration = bc.length * 35 / 100;
      ev.node = 0;
      ev.port = 0;
      certain.push_back(ev);
    }
    for (std::size_t s = 0; s < rc_dsts.size(); ++s) {
      faults::FaultEvent ev;
      ev.kind = faults::FaultKind::kCorrupt;
      ev.at = bc.length * (3 + 2 * s) / 10;
      ev.duration = bc.length / 25;
      ev.node = rc_dsts[s];
      ev.port = 0;
      ev.probability = 1.0;
      certain.push_back(ev);
    }
    plan.merge(faults::FaultPlan(std::move(certain)));
    res.plan = plan.describe();
  }

  std::optional<faults::FaultInjector> injector;
  std::optional<faults::RecoveryCoordinator> coordinator;
  if (faulty) {
    injector.emplace(sim, graph, plan, run_seed ^ 0xFA7Eull);
    coordinator.emplace(sim, graph, sm, admission, *injector,
                        faults::RecoveryConfig{});
    for (std::size_t i = 0; i < g_ids.size(); ++i)
      coordinator->track(g_ids[i], g_flows[i]);
    for (std::size_t i = 0; i < b_ids.size(); ++i)
      coordinator->track_best_effort(b_ids[i], b_flows[i]);
  }

  sm.configure_fabric(sim, admission);
  if (injector) injector->arm();

  sim.metrics().start_window(0);
  sim.run_until(bc.length);
  sim.metrics().stop_window(bc.length);

  // --- Harvest -------------------------------------------------------------
  const auto add = [&sim](ClassAgg& agg, std::uint32_t flow) {
    const auto& c = sim.metrics().connections[flow];
    agg.tx += c.tx_packets;
    agg.rx += c.rx_packets;
    agg.dropped += c.dropped_packets;
    agg.misses += c.deadline_misses;
  };
  for (std::size_t i = 0; i < g_flows.size(); ++i)
    add(g_sls[i] <= 5 ? res.dbts : res.db, g_flows[i]);
  for (const auto flow : b_flows) add(res.be, flow);

  if (injector) res.fault = injector->stats();
  if (coordinator) {
    res.recovery = coordinator->stats();
    res.recovery.purged_in_flight += sim.purged_in_flight_late();
  }
  for (const auto& s : sessions) {
    const auto ss = s->session_stats();
    res.rc_messages += ss.messages_completed;
    res.rc_recovered += ss.recovered_packets;
    res.rc_retransmits += s->tx_stats().retransmitted_packets;
    res.rc_max_recovery = std::max(res.rc_max_recovery,
                                   ss.max_recovery_latency);
    res.rc_failed = res.rc_failed || s->failed();
  }
  res.events = sim.events_processed();
  // While injector/coordinator/sessions are still alive their probes are
  // registered, so the snapshot sees the full faults/recovery/rc counters.
  res.telemetry = sim.telemetry_snapshot();
  if (sim.series() != nullptr) res.series = sim.series()->finalize(sim.now());
  if (scfg.trace_capacity != 0) {
    res.trace = sim.trace();
    // Fault windows as control-plane phase spans, one viewer track per kind.
    for (const auto& ev : plan.events()) {
      obs::PhaseSpan span;
      span.track = faults::to_string(ev.kind);
      std::ostringstream nm;
      nm << faults::to_string(ev.kind) << " ";
      if (ev.kind == faults::FaultKind::kOverload)
        nm << "f" << ev.flow;
      else
        nm << ev.node << "." << ev.port;
      span.name = nm.str();
      span.begin = ev.at;
      span.end = ev.duration != 0 ? ev.at + ev.duration : bc.length;
      res.fault_spans.push_back(std::move(span));
    }
  }

  std::string why;
  if (!admission.audit_tables(&why))
    throw std::runtime_error("post-storm table audit failed: " + why);
  return res;
}

void write_class_agg(util::JsonWriter& w, const ClassAgg& a) {
  w.begin_object();
  w.kv("tx", a.tx);
  w.kv("rx", a.rx);
  w.kv("dropped", a.dropped);
  w.kv("misses", a.misses);
  w.end_object();
}

obs::Report make_report(const BenchConfig& bc,
                        const std::vector<RunResult>& storm,
                        const std::vector<RunResult>& baseline) {
  obs::Report report("bench_faults");
  report.config("length", static_cast<std::uint64_t>(bc.length));
  report.config("spines", static_cast<std::uint64_t>(bc.spines));
  report.config("leaves", static_cast<std::uint64_t>(bc.leaves));
  report.config("hosts_per_leaf",
                static_cast<std::uint64_t>(bc.hosts_per_leaf));
  report.config("seed", bc.seed);
  report.config("runs", static_cast<std::uint64_t>(bc.runs));
  report.config("with_baseline", bc.with_baseline);

  std::vector<obs::Snapshot> parts;
  parts.reserve(storm.size());
  for (const auto& r : storm) parts.push_back(r.telemetry);
  report.telemetry(obs::Snapshot::merge(parts));
  if (!storm.empty() && storm.front().series.has_value())
    report.series(*storm.front().series);

  report.figure("runs", [&bc, &storm, &baseline](util::JsonWriter& w) {
    w.begin_array();
    for (std::size_t i = 0; i < storm.size(); ++i) {
      const auto& r = storm[i];
      w.begin_object();
      w.kv("seed", r.run_seed);
      w.kv("guaranteed", static_cast<std::uint64_t>(r.guaranteed));
      w.kv("besteffort", static_cast<std::uint64_t>(r.besteffort));
      w.key("dbts");
      write_class_agg(w, r.dbts);
      w.key("db");
      write_class_agg(w, r.db);
      w.key("be");
      write_class_agg(w, r.be);
      if (i < baseline.size()) w.kv("be_baseline_rx", baseline[i].be.rx);
      w.kv("violations", r.dbts.misses + r.db.misses);
      w.kv("revocations", r.recovery.guarantee_revocations);
      w.kv("resweeps", r.recovery.resweeps);
      w.kv("rerouted", r.recovery.rerouted);
      w.kv("shed", r.recovery.shed_best_effort);
      w.kv("suspended", r.recovery.suspended);
      w.kv("suspended_guaranteed", r.recovery.suspended_guaranteed);
      w.kv("suspended_best_effort", r.recovery.suspended_best_effort);
      w.kv("restored", r.recovery.restored);
      w.kv("purged_in_flight", r.recovery.purged_in_flight);
      w.kv("max_recovery_latency",
           static_cast<std::uint64_t>(r.recovery.max_recovery_latency));
      w.kv("corrupt_attempts", r.fault.corrupt_attempts);
      w.kv("crc_rejected", r.fault.crc_rejected);
      w.kv("crc_escaped", r.fault.crc_escaped);
      w.kv("dropped", r.fault.dropped_packets);
      w.kv("flushed", r.fault.flushed_packets);
      w.kv("rc_messages", r.rc_messages);
      w.kv("rc_recovered", r.rc_recovered);
      w.kv("rc_retransmits", r.rc_retransmits);
      w.kv("rc_max_recovery", static_cast<std::uint64_t>(r.rc_max_recovery));
      w.kv("rc_failed", r.rc_failed);
      w.kv("events", r.events);
      if (bc.runs == 1 && !r.plan.empty()) w.kv("plan", r.plan);
      w.end_object();
    }
    w.end_array();
  });
  report.figure("totals", [&storm](util::JsonWriter& w) {
    std::uint64_t violations = 0;
    std::uint64_t revocations = 0;
    std::uint64_t escaped = 0;
    for (const auto& r : storm) {
      violations += r.dbts.misses + r.db.misses;
      revocations += r.recovery.guarantee_revocations;
      escaped += r.fault.crc_escaped;
    }
    w.begin_object();
    w.kv("violations", violations);
    w.kv("revocations", revocations);
    w.kv("crc_escaped", escaped);
    w.end_object();
  });
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(1);
  BenchConfig bc;
  bc.spines = static_cast<unsigned>(cli.get_int("spines", 2));
  bc.leaves = static_cast<unsigned>(cli.get_int("leaves", 4));
  bc.hosts_per_leaf = static_cast<unsigned>(cli.get_int("hosts-per-leaf", 2));
  bc.length = static_cast<iba::Cycle>(
      cli.get_int("length", cli.get_bool("quick", false) ? 1'200'000
                                                         : 3'000'000));
  bc.seed = sf.seed;
  bc.storm_seed = static_cast<std::uint64_t>(cli.get_int("storm-seed", 0));
  bc.plan_spec = cli.get("fault-plan", "");
  bc.runs = static_cast<unsigned>(cli.get_int("runs", 1));
  bc.jobs = sf.jobs;
  bc.with_baseline = !cli.get_bool("no-baseline", false);
  bc.json = sf.json;
  if (!sf.trace_out.empty()) bc.trace_capacity = bench::kTraceOutCapacity;
  bc.sample_every = sf.sample_every;
  bc.profile = sf.profile;

  // Deterministic sweep: results land in slot i, every run's seed is a pure
  // function of (seed, i), printing happens afterwards in index order.
  std::vector<RunResult> storm(bc.runs);
  std::vector<RunResult> baseline(bc.with_baseline ? bc.runs : 0);
  util::parallel_for(bc.jobs, bc.runs, [&](std::size_t i) {
    const auto run_seed = bench::derive_run_seed(bc.seed, i);
    // Only the first storm run observes (trace/series/profile): one
    // self-contained deterministic run, so the exported artefacts are
    // byte-identical for any --jobs.
    storm[i] = run_one(bc, run_seed, /*faulty=*/true, /*observe=*/i == 0);
    if (bc.with_baseline)
      baseline[i] = run_one(bc, run_seed, /*faulty=*/false);
  });

  int rc = 0;
  if (bc.json) {
    rc = bench::emit_report(make_report(bc, storm, baseline), cli);
  } else {
    std::cout << "=== Fault storm: " << bc.runs << " run(s), " << bc.length
              << " cycles each, dual-spine " << bc.spines << "x" << bc.leaves
              << "x" << bc.hosts_per_leaf
              << " (4x primary / 1x backup) ===\n\n";
    util::TablePrinter table(
        {"run", "DBTS rx/miss", "DB rx/miss", "BE dlvr% storm/clean",
         "BE shed/susp", "resweeps", "rerouted", "CRC rej/esc",
         "RC done/rec"});
    for (std::size_t i = 0; i < storm.size(); ++i) {
      const auto& r = storm[i];
      const auto frac = [](const ClassAgg& a) {
        std::ostringstream os;
        os << a.rx << "/" << a.misses;
        return os.str();
      };
      const auto dlvr = [](const ClassAgg& a) {
        return a.tx ? util::TablePrinter::pct(
                          static_cast<double>(a.rx) /
                          static_cast<double>(a.tx))
                    : std::string("-");
      };
      std::ostringstream be;
      be << dlvr(r.be) << "/"
         << (i < baseline.size() ? dlvr(baseline[i].be) : "-");
      std::ostringstream degraded;
      degraded << r.recovery.shed_best_effort << "/"
               << r.recovery.suspended_best_effort;
      std::ostringstream crc;
      crc << r.fault.crc_rejected << "/" << r.fault.crc_escaped;
      std::ostringstream rc;
      rc << r.rc_messages << "/" << r.rc_recovered
         << (r.rc_failed ? " FAILED" : "");
      table.add_row({std::to_string(i), frac(r.dbts), frac(r.db), be.str(),
                     degraded.str(), std::to_string(r.recovery.resweeps),
                     std::to_string(r.recovery.rerouted), crc.str(),
                     rc.str()});
    }
    table.print(std::cout);

    std::uint64_t violations = 0;
    std::uint64_t revocations = 0;
    std::uint64_t escaped = 0;
    std::uint64_t degraded_be = 0;
    std::uint64_t suspended_g = 0;
    iba::Cycle worst_recovery = 0;
    for (const auto& r : storm) {
      violations += r.dbts.misses + r.db.misses;
      revocations += r.recovery.guarantee_revocations;
      escaped += r.fault.crc_escaped;
      degraded_be += r.recovery.shed_best_effort +
                     r.recovery.suspended_best_effort;
      suspended_g += r.recovery.suspended_guaranteed;
      worst_recovery = std::max(worst_recovery,
                                r.recovery.max_recovery_latency);
    }
    std::cout << "\nguarantee violations (DBTS/DB deadline misses): "
              << violations
              << "\nguarantee revocations (refused with sheddable capacity): "
              << revocations
              << "\nbest-effort connections degraded (shed or suspended): "
              << degraded_be
              << "\nguaranteed connections suspended (no path/capacity): "
              << suspended_g << "\nCRC escapes: " << escaped
              << "\nworst SM recovery latency: " << worst_recovery
              << " cycles\n";
    if (bc.runs == 1 && !storm.front().plan.empty())
      std::cout << "\nstorm plan (replay with --fault-plan):\n  "
                << storm.front().plan << "\n";
  }

  if (!sf.trace_out.empty()) {
    std::vector<obs::CounterTrack> counters;
    if (storm.front().series.has_value())
      counters = bench::series_tracks(*storm.front().series);
    bench::emit_trace(sf.trace_out, storm.front().trace,
                      storm.front().fault_spans, counters);
  }
  if (storm.front().series.has_value() &&
      !bench::export_series_csv(*storm.front().series, sf))
    rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
