// Experiment E6 — the paper's §4.1 claim: "We have evaluated networks with
// sizes ranging from 8 to 64 switches ... for all cases, the results are
// similar." This bench sweeps the network size and reports, per size, the
// admission outcome and the QoS headline numbers; the expected shape is a
// flat row of 100% deadline compliance across sizes. The sizes run in
// parallel via the sweep engine (--jobs N, see docs/SWEEP.md).
//
// 64 switches is expensive; it runs only with --full.
//
// A second phase measures the parallel simulation core (ISSUE 7): the same
// 16-switch scenario with large packets (MTU 4096 stretches the lookahead
// window) timed sequentially and with --speedup-shards workers, reported as
// a speedup row. The numbers are wall-clock and honest: with fewer hardware
// threads than shards the sharded run *loses* (barrier churn on one core);
// the byte-identical-output check runs either way. --skip-speedup omits the
// phase.
//
// A third phase measures the structured-topology registry (ISSUE 9): per
// (family, size) cell it builds the fabric, routes it with the family's
// engine, checks the channel-dependency graph for cycles, times flat-CSR
// route lookups under a global allocation counter (the column must read 0),
// and runs a short fixed-flow simulation for a host-cycles/us throughput
// figure. Default cells top out at a 1k-host dragonfly and a 4k-host
// fat-tree; --full adds 14k-110k-host instances (build/route/lookup only —
// a packet-level sim at that size measures the allocator, not the fabric).
// --skip-topo omits the phase.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <new>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "iba/arbiter.hpp"
#include "network/registry.hpp"
#include "network/routing_engine.hpp"
#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

// Global allocation counter: the topology phase brackets its lookup loop
// with reads of this to *prove* the flat-CSR Routes table allocates nothing
// per lookup (the pre-registry per-path API allocated a vector per query).
static std::atomic<std::uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace ibarb;

namespace {

struct SizeRow {
  unsigned switches = 0;
  std::uint64_t hosts = 0;
  std::uint64_t connections = 0;
  double acceptance = 0.0;
  double mean_hops = 0.0;
  double switch_utilization = 0.0;
  double meet_deadline = 0.0;
  std::uint64_t misses = 0;
};

SizeRow summarize(const bench::PaperRun& run) {
  SizeRow row;
  row.switches = run.cfg.switches;
  row.hosts = run.graph.hosts().size();
  row.connections = run.workload.accepted;
  std::uint64_t rx = 0;
  double hops = 0.0;
  for (const auto& ec : run.workload.connections) {
    const auto& c = run.sim->metrics().connections[ec.flow];
    rx += c.rx_packets;
    row.misses += c.deadline_misses;
    hops += ec.stages - 1;
  }
  if (run.workload.offered > 0)
    row.acceptance = 100.0 * double(run.workload.accepted) /
                     double(run.workload.offered);
  if (!run.workload.connections.empty())
    row.mean_hops = hops / double(run.workload.connections.size());
  row.switch_utilization = run.table2().switch_utilization;
  if (rx > 0) row.meet_deadline = 100.0 * (1.0 - double(row.misses) / double(rx));
  return row;
}

struct SpeedupRow {
  unsigned shards = 0;     ///< Requested worker count.
  unsigned effective = 0;  ///< What the run actually used (fallback = 1).
  double seconds = 0.0;    ///< Simulation phase only (setup excluded).
  std::uint64_t events = 0;
  sim::ShardLoadStats load;  ///< Per-shard balance (empty when sequential).
};

/// Max/min per-shard event ratio: 1.0 is a perfect split, 0.0 when a shard
/// processed nothing (or the run was sequential).
double load_ratio(const sim::ShardLoadStats& load) {
  if (load.events.size() < 2) return 0.0;
  const auto [lo, hi] =
      std::minmax_element(load.events.begin(), load.events.end());
  return *lo > 0 ? double(*hi) / double(*lo) : 0.0;
}

/// Fraction of the workers' aggregate wall clock spent blocked on window
/// barriers — the load-imbalance tax the shard_balance figure tracks.
double barrier_wait_share(const sim::ShardLoadStats& load, double seconds) {
  if (load.barrier_wait_ns.empty() || seconds <= 0.0) return 0.0;
  double wait_ns = 0.0;
  for (const auto ns : load.barrier_wait_ns) wait_ns += double(ns);
  return wait_ns / (seconds * 1e9 * double(load.barrier_wait_ns.size()));
}

/// Times the simulation phase of one fig4-class run (16 switches, MTU 4096)
/// at the given shard count, via the two-phase PaperRun form so fabric and
/// workload construction stay out of the measurement.
SpeedupRow time_sharded_run(bench::PaperRunConfig cfg, unsigned shards) {
  cfg.switches = 16;
  cfg.mtu = iba::Mtu::kMtu4096;
  cfg.shards = shards;
  bench::PaperRun run(cfg, bench::PaperRun::DeferSim{});
  const auto t0 = std::chrono::steady_clock::now();
  run.run();
  SpeedupRow row;
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  row.shards = shards;
  row.effective = run.sim->effective_shards();
  row.events = run.summary.events;
  row.load = run.sim->shard_load();
  return row;
}

// --- Topology-registry scaling phase (ISSUE 9) ----------------------------

struct TopoCase {
  const char* spec;     ///< Registry grammar string (network/registry.hpp).
  const char* routing;  ///< Engine the family pairs with.
  bool full_only = false;
};

constexpr TopoCase kTopoCases[] = {
    {"fattree:k=4,n=2", "fattree-dmodk"},
    {"fattree:k=8,n=2", "fattree-dmodk"},
    {"fattree:k=16,n=3", "fattree-dmodk"},               // 4096 hosts
    {"dragonfly:a=4,h=2,g=9,p=2", "minimal-vl-escape"},
    {"dragonfly:a=8,h=4,g=33,p=4", "minimal-vl-escape"}, // 1056 hosts
    {"torus3d:x=4,y=4,z=4", "minimal-vl-escape"},
    {"torus3d:x=8,y=8,z=8,hosts=2", "minimal-vl-escape"},    // 1024 hosts
    {"fattree:k=24,n=3", "fattree-dmodk", true},             // 13824 hosts
    {"dragonfly:a=16,h=8,g=129,p=8", "minimal-vl-escape", true},  // 16512
    {"torus3d:x=16,y=16,z=16,hosts=4", "minimal-vl-escape", true},  // 16384
    {"fattree:k=48,n=3", "fattree-dmodk", true},             // 110592 hosts
};

/// Switch-level channel-dependency-graph acyclicity (Dally/Seitz): a cycle
/// among (switch, out-port, VL) channels means the routing function can
/// deadlock. Paths toward a destination switch form a tree, so every edge
/// is generated directly from consecutive switch hops — no path walks.
bool cdg_acyclic(const network::Routes& r) {
  const auto& g = r.graph();
  const auto sws = r.switch_ids();
  std::vector<std::uint32_t> dense(g.node_count(), 0);
  unsigned max_ports = 1;
  for (std::size_t i = 0; i < sws.size(); ++i) {
    dense[sws[i]] = static_cast<std::uint32_t>(i);
    max_ports = std::max(max_ports, g.port_count(sws[i]));
  }
  const auto chan = [&](iba::NodeId sw, iba::PortIndex port,
                        iba::VirtualLane vl) -> std::uint64_t {
    return (std::uint64_t(dense[sw]) * max_ports + port) * r.vl_layers() + vl;
  };
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(sws.size() * sws.size() / 4);
  for (const auto t : sws) {
    for (const auto s : sws) {
      if (s == t) continue;
      const auto port = r.switch_out_port(s, t);
      if (port == network::kNoRoute) continue;
      const auto peer = g.peer(s, port);
      if (!peer || peer->node == t || !g.is_switch(peer->node)) continue;
      const auto next_port = r.switch_out_port(peer->node, t);
      if (next_port == network::kNoRoute) continue;
      edges.insert(chan(s, port, r.switch_vl(s, t)) << 32 |
                   chan(peer->node, next_port, r.switch_vl(peer->node, t)));
    }
  }
  // Kahn's algorithm over the deduplicated edge set.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> adj;
  std::unordered_map<std::uint64_t, std::uint32_t> indeg;
  for (const auto e : edges) {
    const std::uint64_t a = e >> 32, b = e & 0xFFFFFFFFu;
    adj[a].push_back(b);
    ++indeg[b];
    indeg.try_emplace(a, 0);
  }
  std::vector<std::uint64_t> ready;
  for (const auto& [c, d] : indeg)
    if (d == 0) ready.push_back(c);
  std::size_t seen = 0;
  while (!ready.empty()) {
    const auto c = ready.back();
    ready.pop_back();
    ++seen;
    const auto it = adj.find(c);
    if (it == adj.end()) continue;
    for (const auto n : it->second)
      if (--indeg[n] == 0) ready.push_back(n);
  }
  return seen == indeg.size();
}

struct TopoRow {
  std::string family;
  std::string spec;
  std::string routing;
  std::uint64_t switches = 0;
  std::uint64_t hosts = 0;
  double build_ms = 0.0;
  double route_ms = 0.0;
  std::uint64_t table_bytes = 0;
  unsigned vl_layers = 1;
  int cdg = -1;  ///< 1 acyclic, 0 CYCLE, -1 skipped (size cap).
  double lookups_per_us = 0.0;
  std::uint64_t lookup_allocs = 0;  ///< Heap allocations across the loop.
  std::uint64_t sim_rx = 0;
  double host_cycles_per_us = 0.0;  ///< 0 when the sim was skipped.
};

/// Sink the lookup checksum so the loop cannot be optimized away.
volatile std::uint64_t g_lookup_sink = 0;

TopoRow run_topo_case(const TopoCase& tc) {
  using clock = std::chrono::steady_clock;
  const auto ms = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  TopoRow row;
  row.spec = tc.spec;
  row.routing = tc.routing;

  const auto spec = network::TopologySpec::parse(tc.spec);
  row.family = spec.family();
  const auto t0 = clock::now();
  const auto g = spec.build();
  const auto t1 = clock::now();
  const auto routes = network::compute_routes(g, tc.routing);
  const auto t2 = clock::now();
  row.build_ms = ms(t0, t1);
  row.route_ms = ms(t1, t2);
  row.switches = g.switches().size();
  row.hosts = g.hosts().size();
  row.table_bytes = routes.table_bytes();
  row.vl_layers = routes.vl_layers();

  // Deadlock freedom. Capped at 4096 switches: the edge set is O(n_sw^2)
  // and the giant --full instances are covered by the same check in
  // tests/test_routing_engines.cpp at representative sizes.
  if (row.switches <= 4096) row.cdg = cdg_acyclic(routes) ? 1 : 0;

  // Flat-CSR lookup throughput under the allocation counter. ~2M lookups,
  // strided over hosts so every destination row gets touched.
  const auto sws = routes.switch_ids();
  const auto hosts = g.hosts();
  const std::size_t stride =
      std::max<std::size_t>(1, sws.size() * hosts.size() / 2'000'000);
  std::uint64_t sum = 0, lookups = 0;
  const auto allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto t3 = clock::now();
  for (const auto sw : sws) {
    for (std::size_t i = 0; i < hosts.size(); i += stride) {
      sum += routes.out_port(sw, hosts[i]);
      sum += routes.vl(sw, hosts[i]);
      ++lookups;
    }
  }
  const auto t4 = clock::now();
  row.lookup_allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  g_lookup_sink = sum;
  const double lookup_us = ms(t3, t4) * 1000.0;
  if (lookup_us > 0.0) row.lookups_per_us = double(lookups) / lookup_us;

  // Short fixed-flow simulation: eight CBR flows across the fabric, 300k
  // cycles. The flow count is constant, so the wall clock tracks the
  // per-hop cost of the full-size fabric, not the offered load. Skipped
  // above 8k hosts where per-port buffer state dominates the measurement.
  if (row.hosts <= 8192) {
    sim::Simulator simulator(g, routes, sim::SimConfig{});
    iba::VlArbitrationTable table;
    for (unsigned vl = 0; vl < 8; ++vl)
      table.high()[vl] = iba::ArbTableEntry{static_cast<iba::VirtualLane>(vl),
                                            64};
    for (iba::NodeId n = 0; n < g.node_count(); ++n) {
      const unsigned ports = g.is_switch(n) ? g.port_count(n) : 1;
      for (unsigned p = 0; p < ports; ++p)
        if (g.peer(n, static_cast<iba::PortIndex>(p)))
          simulator.set_output_arbitration(
              n, static_cast<iba::PortIndex>(p), table);
    }
    std::vector<std::uint32_t> flows;
    for (unsigned i = 0; i < 8; ++i) {
      sim::FlowSpec f;
      f.src_host = hosts[(i * hosts.size()) / 8];
      f.dst_host = hosts[((i * hosts.size()) / 8 + hosts.size() / 2) %
                         hosts.size()];
      if (f.src_host == f.dst_host) continue;
      f.sl = static_cast<iba::ServiceLevel>(i);
      f.payload_bytes = 256;
      f.interval = 2000 + 97 * i;
      f.deadline = 1u << 20;
      flows.push_back(simulator.add_flow(f));
    }
    constexpr iba::Cycle kSimCycles = 300'000;
    simulator.metrics().start_window(0);
    const auto t5 = clock::now();
    simulator.run_until(kSimCycles);
    const auto t6 = clock::now();
    for (const auto f : flows)
      row.sim_rx += simulator.metrics().connections[f].rx_packets;
    const double sim_us = ms(t5, t6) * 1000.0;
    if (sim_us > 0.0)
      row.host_cycles_per_us =
          double(kSimCycles) * double(row.hosts) / sim_us;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  auto base = bench::config_from_cli(cli);
  const bool full = cli.get_bool("full", false);

  if (!sf.json) std::cout << "=== Scaling: 8..64 switches, small packets ===\n\n";

  std::vector<unsigned> sizes{8, 16, 32};
  if (full) sizes.push_back(64);
  std::vector<bench::PaperRunConfig> cfgs;
  for (const auto n : sizes) {
    auto cfg = base;
    cfg.switches = n;
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "scaling"));

  const bool skip_speedup = cli.get_bool("skip-speedup", false);
  const auto speedup_shards =
      static_cast<unsigned>(cli.get_int("speedup-shards", 4));
  const unsigned hw_threads = std::thread::hardware_concurrency();
  SpeedupRow seq_row, par_row;
  if (!skip_speedup) {
    if (!sf.json)
      std::cerr << "[speedup] 16-switch MTU-4096 run, sequential...\n";
    seq_row = time_sharded_run(base, 1);
    if (!sf.json)
      std::cerr << "[speedup] same run, --shards " << speedup_shards
                << "...\n";
    par_row = time_sharded_run(base, speedup_shards);
  }
  const double speedup =
      skip_speedup || par_row.seconds <= 0.0 ? 0.0
                                             : seq_row.seconds / par_row.seconds;

  const bool skip_topo = cli.get_bool("skip-topo", false);
  std::vector<TopoRow> topo_rows;
  if (!skip_topo) {
    for (const auto& tc : kTopoCases) {
      if (tc.full_only && !full) continue;
      if (!sf.json) std::cerr << "[topo] " << tc.spec << "...\n";
      topo_rows.push_back(run_topo_case(tc));
    }
  }

  int rc = 0;
  if (sf.json) {
    obs::Report report("scaling");
    bench::echo_config(report, base);
    report.config("full", full);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("sizes", [&](util::JsonWriter& w) {
      w.begin_array();
      for (const auto& run : sweep.runs) {
        const auto row = summarize(*run);
        w.begin_object();
        w.kv("switches", static_cast<std::uint64_t>(row.switches));
        w.kv("hosts", row.hosts);
        w.kv("connections", row.connections);
        w.kv("acceptance_pct", row.acceptance);
        w.kv("mean_hops", row.mean_hops);
        w.kv("switch_utilization", row.switch_utilization);
        w.kv("meet_deadline_pct", row.meet_deadline);
        w.kv("deadline_misses", row.misses);
        w.end_object();
      }
      w.end_array();
    });
    if (!skip_speedup) {
      report.figure("shards_speedup", [&](util::JsonWriter& w) {
        const auto row_obj = [&w](const SpeedupRow& r) {
          w.begin_object();
          w.kv("shards", static_cast<std::uint64_t>(r.shards));
          w.kv("effective_shards", static_cast<std::uint64_t>(r.effective));
          w.kv("seconds", r.seconds);
          w.kv("events", r.events);
          w.end_object();
        };
        w.begin_object();
        w.kv("switches", std::uint64_t{16});
        w.kv("mtu_bytes", std::uint64_t{4096});
        w.kv("hw_threads", static_cast<std::uint64_t>(hw_threads));
        w.key("sequential");
        row_obj(seq_row);
        w.key("sharded");
        row_obj(par_row);
        w.kv("speedup", speedup);
        // The determinism contract holds regardless of the wall clock.
        w.kv("events_identical", seq_row.events == par_row.events);
        w.end_object();
      });
      report.figure("shard_balance", [&](util::JsonWriter& w) {
        const auto& load = par_row.load;
        w.begin_object();
        w.kv("shards", static_cast<std::uint64_t>(par_row.shards));
        w.kv("effective_shards",
             static_cast<std::uint64_t>(par_row.effective));
        w.kv("windows", load.windows);
        w.key("events_per_shard").begin_array();
        for (const auto e : load.events) w.value(e);
        w.end_array();
        w.key("barrier_wait_ns_per_shard").begin_array();
        for (const auto ns : load.barrier_wait_ns) w.value(ns);
        w.end_array();
        // max/min per-shard events: 1.0 = perfect balance. Wall-clock-free,
        // so it is stable across machines (the wait share below is not).
        w.kv("load_ratio", load_ratio(load));
        w.kv("barrier_wait_share",
             barrier_wait_share(load, par_row.seconds));
        w.kv("orchestrator_wait_ns", load.orchestrator_wait_ns);
        w.end_object();
      });
    }
    if (!skip_topo) {
      report.figure("topo_scaling", [&](util::JsonWriter& w) {
        w.begin_array();
        for (const auto& r : topo_rows) {
          w.begin_object();
          w.kv("family", r.family);
          w.kv("spec", r.spec);
          w.kv("routing", r.routing);
          w.kv("switches", r.switches);
          w.kv("hosts", r.hosts);
          w.kv("build_ms", r.build_ms);
          w.kv("route_ms", r.route_ms);
          w.kv("table_bytes", r.table_bytes);
          w.kv("vl_layers", static_cast<std::uint64_t>(r.vl_layers));
          w.kv("cdg", r.cdg == 1   ? "acyclic"
                      : r.cdg == 0 ? "CYCLE"
                                   : "skipped");
          w.kv("lookups_per_us", r.lookups_per_us);
          w.kv("lookup_allocs", r.lookup_allocs);
          w.kv("sim_rx_packets", r.sim_rx);
          w.kv("host_cycles_per_us", r.host_cycles_per_us);
          w.end_object();
        }
        w.end_array();
      });
    }
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"switches", "hosts", "connections",
                              "acceptance (%)", "mean hops", "switch util (%)",
                              "meet deadline (%)", "misses"});
    for (const auto& run : sweep.runs) {
      const auto row = summarize(*run);
      table.add_row(
          {std::to_string(row.switches), std::to_string(row.hosts),
           std::to_string(row.connections),
           util::TablePrinter::num(row.acceptance, 1),
           util::TablePrinter::num(row.mean_hops, 2),
           util::TablePrinter::num(row.switch_utilization * 100.0, 2),
           util::TablePrinter::num(row.meet_deadline, 3),
           std::to_string(row.misses)});
      std::cerr << "[" << row.switches
                << " switches] window=" << run->summary.window_cycles
                << (run->summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: deadline compliance stays at 100% across\n"
                 "sizes (pass --full to include the 64-switch network).\n";
    if (!skip_speedup) {
      std::cout << "\n=== Parallel core: 16 switches, MTU 4096 ===\n\n";
      util::TablePrinter sp({"shards", "effective", "seconds", "events",
                             "speedup"});
      sp.add_row({"1", std::to_string(seq_row.effective),
                  util::TablePrinter::num(seq_row.seconds, 2),
                  std::to_string(seq_row.events), "1.00"});
      sp.add_row({std::to_string(par_row.shards),
                  std::to_string(par_row.effective),
                  util::TablePrinter::num(par_row.seconds, 2),
                  std::to_string(par_row.events),
                  util::TablePrinter::num(speedup, 2)});
      sp.print(std::cout);
      std::cout << "\n(" << hw_threads << " hardware threads; a speedup needs "
                << "at least shards+1 of them — see docs/PARALLEL.md. Event "
                << "counts must match regardless: "
                << (seq_row.events == par_row.events ? "OK" : "MISMATCH")
                << ")\n";
      if (!par_row.load.events.empty()) {
        std::cout << "shard balance: load ratio (max/min events) "
                  << util::TablePrinter::num(load_ratio(par_row.load), 2)
                  << ", barrier-wait share "
                  << util::TablePrinter::num(
                         100.0 *
                             barrier_wait_share(par_row.load, par_row.seconds),
                         1)
                  << "% of worker wall clock over " << par_row.load.windows
                  << " windows\n";
      }
    }
    if (!skip_topo) {
      std::cout << "\n=== Topology registry: structured families ===\n\n";
      util::TablePrinter tp({"topology", "routing", "switches", "hosts",
                             "build (ms)", "route (ms)", "table (MB)", "VLs",
                             "CDG", "lookups/us", "allocs", "sim rx",
                             "host-cyc/us"});
      for (const auto& r : topo_rows) {
        tp.add_row(
            {r.spec, r.routing, std::to_string(r.switches),
             std::to_string(r.hosts), util::TablePrinter::num(r.build_ms, 1),
             util::TablePrinter::num(r.route_ms, 1),
             util::TablePrinter::num(double(r.table_bytes) / 1e6, 2),
             std::to_string(r.vl_layers),
             r.cdg == 1   ? "acyclic"
             : r.cdg == 0 ? "CYCLE"
                          : "skipped",
             util::TablePrinter::num(r.lookups_per_us, 1),
             std::to_string(r.lookup_allocs),
             r.host_cycles_per_us > 0.0 ? std::to_string(r.sim_rx) : "-",
             r.host_cycles_per_us > 0.0
                 ? util::TablePrinter::num(r.host_cycles_per_us, 0)
                 : "-"});
      }
      tp.print(std::cout);
      std::cout << "\nRoute lookups go through the flat CSR table: the "
                   "'allocs' column counts heap\nallocations across the "
                   "whole ~2M-lookup loop and must read 0. 'CDG acyclic'\n"
                   "is the Dally/Seitz deadlock-freedom check on the "
                   "(port, VL) channel graph.\n(--full adds 14k-110k-host "
                   "instances, build/route/lookup only.)\n";
    }
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
