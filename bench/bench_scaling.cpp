// Experiment E6 — the paper's §4.1 claim: "We have evaluated networks with
// sizes ranging from 8 to 64 switches ... for all cases, the results are
// similar." This bench sweeps the network size and reports, per size, the
// admission outcome and the QoS headline numbers; the expected shape is a
// flat row of 100% deadline compliance across sizes. The sizes run in
// parallel via the sweep engine (--jobs N, see docs/SWEEP.md).
//
// 64 switches is expensive; it runs only with --full.
//
// A second phase measures the parallel simulation core (ISSUE 7): the same
// 16-switch scenario with large packets (MTU 4096 stretches the lookahead
// window) timed sequentially and with --speedup-shards workers, reported as
// a speedup row. The numbers are wall-clock and honest: with fewer hardware
// threads than shards the sharded run *loses* (barrier churn on one core);
// the byte-identical-output check runs either way. --skip-speedup omits the
// phase.
#include <chrono>
#include <iostream>
#include <thread>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

struct SizeRow {
  unsigned switches = 0;
  std::uint64_t hosts = 0;
  std::uint64_t connections = 0;
  double acceptance = 0.0;
  double mean_hops = 0.0;
  double switch_utilization = 0.0;
  double meet_deadline = 0.0;
  std::uint64_t misses = 0;
};

SizeRow summarize(const bench::PaperRun& run) {
  SizeRow row;
  row.switches = run.cfg.switches;
  row.hosts = run.graph.hosts().size();
  row.connections = run.workload.accepted;
  std::uint64_t rx = 0;
  double hops = 0.0;
  for (const auto& ec : run.workload.connections) {
    const auto& c = run.sim->metrics().connections[ec.flow];
    rx += c.rx_packets;
    row.misses += c.deadline_misses;
    hops += ec.stages - 1;
  }
  if (run.workload.offered > 0)
    row.acceptance = 100.0 * double(run.workload.accepted) /
                     double(run.workload.offered);
  if (!run.workload.connections.empty())
    row.mean_hops = hops / double(run.workload.connections.size());
  row.switch_utilization = run.table2().switch_utilization;
  if (rx > 0) row.meet_deadline = 100.0 * (1.0 - double(row.misses) / double(rx));
  return row;
}

struct SpeedupRow {
  unsigned shards = 0;     ///< Requested worker count.
  unsigned effective = 0;  ///< What the run actually used (fallback = 1).
  double seconds = 0.0;    ///< Simulation phase only (setup excluded).
  std::uint64_t events = 0;
};

/// Times the simulation phase of one fig4-class run (16 switches, MTU 4096)
/// at the given shard count, via the two-phase PaperRun form so fabric and
/// workload construction stay out of the measurement.
SpeedupRow time_sharded_run(bench::PaperRunConfig cfg, unsigned shards) {
  cfg.switches = 16;
  cfg.mtu = iba::Mtu::kMtu4096;
  cfg.shards = shards;
  bench::PaperRun run(cfg, bench::PaperRun::DeferSim{});
  const auto t0 = std::chrono::steady_clock::now();
  run.run();
  SpeedupRow row;
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  row.shards = shards;
  row.effective = run.sim->effective_shards();
  row.events = run.summary.events;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  auto base = bench::config_from_cli(cli);
  const bool full = cli.get_bool("full", false);

  if (!sf.json) std::cout << "=== Scaling: 8..64 switches, small packets ===\n\n";

  std::vector<unsigned> sizes{8, 16, 32};
  if (full) sizes.push_back(64);
  std::vector<bench::PaperRunConfig> cfgs;
  for (const auto n : sizes) {
    auto cfg = base;
    cfg.switches = n;
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "scaling"));

  const bool skip_speedup = cli.get_bool("skip-speedup", false);
  const auto speedup_shards =
      static_cast<unsigned>(cli.get_int("speedup-shards", 4));
  const unsigned hw_threads = std::thread::hardware_concurrency();
  SpeedupRow seq_row, par_row;
  if (!skip_speedup) {
    if (!sf.json)
      std::cerr << "[speedup] 16-switch MTU-4096 run, sequential...\n";
    seq_row = time_sharded_run(base, 1);
    if (!sf.json)
      std::cerr << "[speedup] same run, --shards " << speedup_shards
                << "...\n";
    par_row = time_sharded_run(base, speedup_shards);
  }
  const double speedup =
      skip_speedup || par_row.seconds <= 0.0 ? 0.0
                                             : seq_row.seconds / par_row.seconds;

  int rc = 0;
  if (sf.json) {
    obs::Report report("scaling");
    bench::echo_config(report, base);
    report.config("full", full);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("sizes", [&](util::JsonWriter& w) {
      w.begin_array();
      for (const auto& run : sweep.runs) {
        const auto row = summarize(*run);
        w.begin_object();
        w.kv("switches", static_cast<std::uint64_t>(row.switches));
        w.kv("hosts", row.hosts);
        w.kv("connections", row.connections);
        w.kv("acceptance_pct", row.acceptance);
        w.kv("mean_hops", row.mean_hops);
        w.kv("switch_utilization", row.switch_utilization);
        w.kv("meet_deadline_pct", row.meet_deadline);
        w.kv("deadline_misses", row.misses);
        w.end_object();
      }
      w.end_array();
    });
    if (!skip_speedup) {
      report.figure("shards_speedup", [&](util::JsonWriter& w) {
        const auto row_obj = [&w](const SpeedupRow& r) {
          w.begin_object();
          w.kv("shards", static_cast<std::uint64_t>(r.shards));
          w.kv("effective_shards", static_cast<std::uint64_t>(r.effective));
          w.kv("seconds", r.seconds);
          w.kv("events", r.events);
          w.end_object();
        };
        w.begin_object();
        w.kv("switches", std::uint64_t{16});
        w.kv("mtu_bytes", std::uint64_t{4096});
        w.kv("hw_threads", static_cast<std::uint64_t>(hw_threads));
        w.key("sequential");
        row_obj(seq_row);
        w.key("sharded");
        row_obj(par_row);
        w.kv("speedup", speedup);
        // The determinism contract holds regardless of the wall clock.
        w.kv("events_identical", seq_row.events == par_row.events);
        w.end_object();
      });
    }
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"switches", "hosts", "connections",
                              "acceptance (%)", "mean hops", "switch util (%)",
                              "meet deadline (%)", "misses"});
    for (const auto& run : sweep.runs) {
      const auto row = summarize(*run);
      table.add_row(
          {std::to_string(row.switches), std::to_string(row.hosts),
           std::to_string(row.connections),
           util::TablePrinter::num(row.acceptance, 1),
           util::TablePrinter::num(row.mean_hops, 2),
           util::TablePrinter::num(row.switch_utilization * 100.0, 2),
           util::TablePrinter::num(row.meet_deadline, 3),
           std::to_string(row.misses)});
      std::cerr << "[" << row.switches
                << " switches] window=" << run->summary.window_cycles
                << (run->summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: deadline compliance stays at 100% across\n"
                 "sizes (pass --full to include the 64-switch network).\n";
    if (!skip_speedup) {
      std::cout << "\n=== Parallel core: 16 switches, MTU 4096 ===\n\n";
      util::TablePrinter sp({"shards", "effective", "seconds", "events",
                             "speedup"});
      sp.add_row({"1", std::to_string(seq_row.effective),
                  util::TablePrinter::num(seq_row.seconds, 2),
                  std::to_string(seq_row.events), "1.00"});
      sp.add_row({std::to_string(par_row.shards),
                  std::to_string(par_row.effective),
                  util::TablePrinter::num(par_row.seconds, 2),
                  std::to_string(par_row.events),
                  util::TablePrinter::num(speedup, 2)});
      sp.print(std::cout);
      std::cout << "\n(" << hw_threads << " hardware threads; a speedup needs "
                << "at least shards+1 of them — see docs/PARALLEL.md. Event "
                << "counts must match regardless: "
                << (seq_row.events == par_row.events ? "OK" : "MISMATCH")
                << ")\n";
    }
  }

  if (!sf.trace_out.empty())
    bench::emit_trace(sf.trace_out, sweep.runs[0]->sim->trace(), {},
                      bench::series_tracks(*sweep.runs[0]));
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
