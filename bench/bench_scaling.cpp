// Experiment E6 — the paper's §4.1 claim: "We have evaluated networks with
// sizes ranging from 8 to 64 switches ... for all cases, the results are
// similar." This bench sweeps the network size and reports, per size, the
// admission outcome and the QoS headline numbers; the expected shape is a
// flat row of 100% deadline compliance across sizes. The sizes run in
// parallel via the sweep engine (--jobs N, see docs/SWEEP.md).
//
// 64 switches is expensive; it runs only with --full.
#include <iostream>

#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  auto base = bench::config_from_cli(cli);
  const bool full = cli.get_bool("full", false);

  std::cout << "=== Scaling: 8..64 switches, small packets ===\n\n";

  std::vector<unsigned> sizes{8, 16, 32};
  if (full) sizes.push_back(64);
  std::vector<bench::PaperRunConfig> cfgs;
  for (const auto n : sizes) {
    auto cfg = base;
    cfg.switches = n;
    cfgs.push_back(cfg);
  }
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "scaling"));

  util::TablePrinter table({"switches", "hosts", "connections",
                            "acceptance (%)", "mean hops", "switch util (%)",
                            "meet deadline (%)", "misses"});
  for (const auto& run : sweep.runs) {
    const auto n = run->cfg.switches;
    std::uint64_t rx = 0, misses = 0;
    double hops = 0.0;
    for (const auto& ec : run->workload.connections) {
      const auto& c = run->sim->metrics().connections[ec.flow];
      rx += c.rx_packets;
      misses += c.deadline_misses;
      hops += ec.stages - 1;
    }
    const double meet =
        rx ? 100.0 * (1.0 - double(misses) / double(rx)) : 0.0;
    const auto t2 = run->table2();
    table.add_row(
        {std::to_string(n), std::to_string(run->graph.hosts().size()),
         std::to_string(run->workload.accepted),
         util::TablePrinter::num(100.0 * double(run->workload.accepted) /
                                     double(run->workload.offered),
                                 1),
         util::TablePrinter::num(
             run->workload.connections.empty()
                 ? 0.0
                 : hops / double(run->workload.connections.size()),
             2),
         util::TablePrinter::num(t2.switch_utilization * 100.0, 2),
         util::TablePrinter::num(meet, 3), std::to_string(misses)});
    std::cerr << "[" << n << " switches] window=" << run->summary.window_cycles
              << (run->summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: deadline compliance stays at 100% across\n"
               "sizes (pass --full to include the 64-switch network).\n";

  const auto unused = cli.unused_flags();
  if (!unused.empty()) std::cerr << "warning: unused flags " << unused << "\n";
  return 0;
}
