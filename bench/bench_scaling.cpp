// Experiment E6 — the paper's §4.1 claim: "We have evaluated networks with
// sizes ranging from 8 to 64 switches ... for all cases, the results are
// similar." This bench sweeps the network size and reports, per size, the
// admission outcome and the QoS headline numbers; the expected shape is a
// flat row of 100% deadline compliance across sizes. The sizes run in
// parallel via the sweep engine (--jobs N, see docs/SWEEP.md).
//
// 64 switches is expensive; it runs only with --full.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

struct SizeRow {
  unsigned switches = 0;
  std::uint64_t hosts = 0;
  std::uint64_t connections = 0;
  double acceptance = 0.0;
  double mean_hops = 0.0;
  double switch_utilization = 0.0;
  double meet_deadline = 0.0;
  std::uint64_t misses = 0;
};

SizeRow summarize(const bench::PaperRun& run) {
  SizeRow row;
  row.switches = run.cfg.switches;
  row.hosts = run.graph.hosts().size();
  row.connections = run.workload.accepted;
  std::uint64_t rx = 0;
  double hops = 0.0;
  for (const auto& ec : run.workload.connections) {
    const auto& c = run.sim->metrics().connections[ec.flow];
    rx += c.rx_packets;
    row.misses += c.deadline_misses;
    hops += ec.stages - 1;
  }
  if (run.workload.offered > 0)
    row.acceptance = 100.0 * double(run.workload.accepted) /
                     double(run.workload.offered);
  if (!run.workload.connections.empty())
    row.mean_hops = hops / double(run.workload.connections.size());
  row.switch_utilization = run.table2().switch_utilization;
  if (rx > 0) row.meet_deadline = 100.0 * (1.0 - double(row.misses) / double(rx));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  auto base = bench::config_from_cli(cli);
  const bool full = cli.get_bool("full", false);

  if (!sf.json) std::cout << "=== Scaling: 8..64 switches, small packets ===\n\n";

  std::vector<unsigned> sizes{8, 16, 32};
  if (full) sizes.push_back(64);
  std::vector<bench::PaperRunConfig> cfgs;
  for (const auto n : sizes) {
    auto cfg = base;
    cfg.switches = n;
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "scaling"));

  int rc = 0;
  if (sf.json) {
    obs::Report report("scaling");
    bench::echo_config(report, base);
    report.config("full", full);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("sizes", [&](util::JsonWriter& w) {
      w.begin_array();
      for (const auto& run : sweep.runs) {
        const auto row = summarize(*run);
        w.begin_object();
        w.kv("switches", static_cast<std::uint64_t>(row.switches));
        w.kv("hosts", row.hosts);
        w.kv("connections", row.connections);
        w.kv("acceptance_pct", row.acceptance);
        w.kv("mean_hops", row.mean_hops);
        w.kv("switch_utilization", row.switch_utilization);
        w.kv("meet_deadline_pct", row.meet_deadline);
        w.kv("deadline_misses", row.misses);
        w.end_object();
      }
      w.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"switches", "hosts", "connections",
                              "acceptance (%)", "mean hops", "switch util (%)",
                              "meet deadline (%)", "misses"});
    for (const auto& run : sweep.runs) {
      const auto row = summarize(*run);
      table.add_row(
          {std::to_string(row.switches), std::to_string(row.hosts),
           std::to_string(row.connections),
           util::TablePrinter::num(row.acceptance, 1),
           util::TablePrinter::num(row.mean_hops, 2),
           util::TablePrinter::num(row.switch_utilization * 100.0, 2),
           util::TablePrinter::num(row.meet_deadline, 3),
           std::to_string(row.misses)});
      std::cerr << "[" << row.switches
                << " switches] window=" << run->summary.window_cycles
                << (run->summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: deadline compliance stays at 100% across\n"
                 "sizes (pass --full to include the 64-switch network).\n";
  }

  if (!sf.trace_out.empty())
    bench::emit_trace(sf.trace_out, sweep.runs[0]->sim->trace(), {},
                      bench::series_tracks(*sweep.runs[0]));
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
