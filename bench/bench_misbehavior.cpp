// Experiment E5 — the paper's motivating comparison (§3, qualitative):
// what happens to dedicated-bandwidth (DB) traffic when high-priority
// sources misbehave (send more than they reserved)?
//
//  * Legacy scheme (Pelissier / the authors' earlier work): DBTS in the
//    high-priority table, DB as plain weight in the low-priority table.
//    A misbehaving DBTS class can starve ALL DB traffic.
//  * New proposal: every guaranteed class lives in the high-priority table,
//    one VL per SL. A misbehaving source can only hurt connections sharing
//    its own VL; every other SL keeps its guarantees.
//
// The offenders here are ALL the DBTS classes (SLs 0-5) sending 3x their
// reservation — collectively they hold most of the reserved bandwidth, so
// the high-priority table saturates the contended links, which is exactly
// the situation the paper's scheme is designed to survive.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

struct Outcome {
  double db_delivered_over_reserved = 0.0;  ///< DB SLs 6-9 aggregate.
  double db_miss_fraction = 0.0;
};

Outcome evaluate(const bench::PaperRun& run) {
  Outcome o;
  double db_res = 0.0, db_del = 0.0;
  std::uint64_t db_rx = 0, db_miss = 0;
  for (const auto& t : run.per_sl_throughput()) {
    if (t.sl >= 6) {
      db_res += t.reserved_wire_mbps;
      db_del += t.delivered_wire_mbps;
    }
  }
  for (const auto& ec : run.workload.connections) {
    const auto& c = run.sim->metrics().connections[ec.flow];
    if (ec.sl >= 6) {
      db_rx += c.rx_packets;
      db_miss += c.deadline_misses;
    }
  }
  if (db_res > 0.0) o.db_delivered_over_reserved = db_del / db_res;
  if (db_rx > 0) o.db_miss_fraction = double(db_miss) / double(db_rx);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  auto base = bench::config_from_cli(cli);
  const double factor = cli.get_double("oversend", 3.0);

  if (!sf.json)
    std::cout << "=== Misbehaving-source experiment: DBTS classes (SL0-5) send "
              << factor << "x their reservation ===\n\n";

  struct Case {
    const char* name;
    const char* key;
    qos::Scheme scheme;
    double factor;
  };
  const Case cases[] = {
      {"new proposal", "new_proposal_base", qos::Scheme::kNewProposal, 1.0},
      {"new proposal", "new_proposal_oversend", qos::Scheme::kNewProposal,
       factor},
      {"legacy (DB in low table)", "legacy_base", qos::Scheme::kLegacy, 1.0},
      {"legacy (DB in low table)", "legacy_oversend", qos::Scheme::kLegacy,
       factor},
  };
  std::vector<bench::PaperRunConfig> cfgs;
  for (const auto& c : cases) {
    auto cfg = base;
    cfg.scheme = c.scheme;
    cfg.oversend_sl_mask = 0x3F;  // SLs 0..5: every DBTS class misbehaves
    cfg.oversend_factor = c.factor;
    cfg.besteffort_load = 0.0;  // isolate the QoS classes
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep = bench::run_sweep(
      cfgs, bench::sweep_options_from_cli(cli, "misbehavior"));

  int rc = 0;
  if (sf.json) {
    obs::Report report("misbehavior");
    bench::echo_config(report, base);
    report.config("oversend_factor", factor);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("cases", [&](util::JsonWriter& w) {
      w.begin_array();
      for (std::size_t i = 0; i < std::size(cases); ++i) {
        const auto o = evaluate(*sweep.runs[i]);
        w.begin_object();
        w.kv("case", cases[i].key);
        w.kv("scheme", cases[i].scheme == qos::Scheme::kNewProposal
                           ? "new_proposal"
                           : "legacy");
        w.kv("oversend_factor", cases[i].factor);
        w.kv("db_delivered_over_reserved", o.db_delivered_over_reserved);
        w.kv("db_miss_fraction", o.db_miss_fraction);
        w.end_object();
      }
      w.end_array();
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"scheme", "oversend", "DB delivered/reserved",
                              "DB deadline-miss frac"});
    for (std::size_t i = 0; i < std::size(cases); ++i) {
      const auto& run = *sweep.runs[i];
      const auto o = evaluate(run);
      table.add_row({cases[i].name, util::TablePrinter::num(cases[i].factor, 1),
                     util::TablePrinter::num(o.db_delivered_over_reserved, 3),
                     util::TablePrinter::pct(o.db_miss_fraction, 2)});
      std::cerr << "[" << cases[i].name << " x" << cases[i].factor
                << "] window=" << run.summary.window_cycles
                << (run.summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
    std::cout <<
        "\nExpected shape: under the new proposal DB keeps delivering its\n"
        "reservation (ratio ~1, near-zero misses) even though every DBTS\n"
        "class floods the fabric; under the legacy scheme the oversending\n"
        "high-priority classes starve the low-priority table and DB's\n"
        "delivered/reserved ratio (and deadline record) collapses.\n";
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
