// Experiment E2 — reproduces Figure 4: the distribution of packet delay per
// Service Level, printed as the percentage of packets received before a
// threshold relative to each connection's guaranteed deadline D, for small
// (a) and large (b) packet sizes. The two panels run in parallel via the
// sweep engine (--jobs N, see docs/SWEEP.md).
//
// Expected shape (paper §4.3): every SL reaches 100% at D (all packets meet
// their deadline); SLs with stricter deadlines (smaller distances, SL 0-3)
// cross later — their packets arrive nearer to the deadline — while lax SLs
// saturate at very tight thresholds already.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

namespace {

void print_panel(const char* title, const bench::PaperRun& run) {
  std::cout << title << "\n";
  std::vector<std::string> headers{"SL", "conns", "packets"};
  for (std::size_t k = 0; k < sim::kDelayThresholds; ++k)
    headers.push_back(bench::threshold_label(k));
  util::TablePrinter table(headers);
  for (const auto& s : run.per_sl()) {
    std::vector<std::string> row{std::to_string(int(s.sl)),
                                 std::to_string(s.connections),
                                 std::to_string(s.rx_packets)};
    for (std::size_t k = 0; k < sim::kDelayThresholds; ++k) {
      // An SL with no received packets has no delay distribution; print a
      // placeholder instead of a misleading 0.00.
      row.push_back(s.rx_packets == 0
                        ? "-"
                        : util::TablePrinter::num(s.within[k] * 100.0, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::uint64_t misses = 0;
  for (const auto& s : run.per_sl()) misses += s.deadline_misses;
  std::cout << "deadline misses across all QoS packets: " << misses << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  const auto base = bench::config_from_cli(cli);

  std::vector<bench::PaperRunConfig> cfgs(2, base);
  cfgs[0].mtu = iba::Mtu::kMtu256;
  cfgs[1].mtu = iba::Mtu::kMtu4096;
  bench::apply_run0_observability(cfgs[0], sf);

  if (!sf.json)
    std::cout << "=== Figure 4: distribution of packet delay "
                 "(% received before Deadline/k) ===\n\n";

  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "fig4"));

  int rc = 0;
  if (sf.json) {
    obs::Report report("fig4_delay");
    bench::echo_config(report, base);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("panel_small", [&](util::JsonWriter& w) {
      bench::write_sl_series(w, sweep.runs[0]->per_sl());
    });
    report.figure("panel_large", [&](util::JsonWriter& w) {
      bench::write_sl_series(w, sweep.runs[1]->per_sl());
    });
    rc = bench::emit_report(report, cli);
  } else {
    print_panel("(a) small packet size (256 B)", *sweep.runs[0]);
    print_panel("(b) large packet size (4 KB)", *sweep.runs[1]);
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
