// The `bench_micro --json` regression harness: wall-clock measurements of the
// simulator hot paths, written to BENCH_micro.json so CI can archive a
// comparable artifact per commit (see docs/PERF.md for how to read it).
//
// Three sections:
//  * queue      — the event queue alone, under a fig4-shaped event stream
//                 (steady-state depth ~20k, the paper network's live event
//                 count), measured for both implementations. The headline
//                 `speedup` is wheel events/sec over the pre-PR binary-heap
//                 baseline on this workload.
//  * sim_fig4   — the full fig4-style experiment (16-switch irregular fabric,
//                 Table-1 workload, small MTU), simulation phase only, for
//                 both queue implementations. End-to-end numbers: includes
//                 all non-queue work, so the ratio here is smaller.
//  * arbiter    — arbitration decisions/sec on dense and sparse tables.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "iba/arbiter.hpp"
#include "paper_runner.hpp"
#include "sim/event_queue.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace ibarb::bench {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Inter-event gap drawn from a fig4-shaped mixture: serialization and
/// crossbar completions land tens to hundreds of cycles out, link-level
/// deliveries a few thousand, CBR regenerations tens of thousands, and a
/// trickle beyond the 2^16-cycle wheel horizon exercises the overflow heap.
iba::Cycle fig4_delta(util::Xoshiro256& rng) {
  const double r = rng.uniform();
  if (r < 0.45) return static_cast<iba::Cycle>(rng.between(8, 600));
  if (r < 0.80) return static_cast<iba::Cycle>(rng.between(600, 4000));
  if (r < 0.99) return static_cast<iba::Cycle>(rng.between(4000, 60000));
  return static_cast<iba::Cycle>(rng.between(70000, 300000));
}

struct QueueResult {
  double push_ns = 0.0;        ///< Mean push cost while filling to depth.
  double pop_ns = 0.0;         ///< Mean pop cost while draining.
  double events_per_sec = 0.0; ///< Steady-state pop+reschedule throughput.
  std::uint64_t checksum = 0;  ///< Order-sensitive digest of popped events.
};

QueueResult measure_queue_once(sim::EventQueueImpl impl, std::size_t depth,
                               std::uint64_t events, std::uint64_t seed) {
  QueueResult res;
  // Gaps are pre-drawn into a ring so the timed loops measure the queue, not
  // the random-number generator; the ring fits in L2 and is read in order.
  constexpr std::size_t kRing = 1u << 16;
  static_assert((kRing & (kRing - 1)) == 0);
  std::vector<iba::Cycle> deltas(kRing);
  {
    util::Xoshiro256 rng(seed);
    for (auto& d : deltas) d = fig4_delta(rng);
  }
  std::size_t ring = 0;
  const auto next_delta = [&] { return deltas[ring++ & (kRing - 1)]; };
  sim::EventQueue q(impl);
  iba::Cycle now = 0;

  const auto make_event = [&](iba::Cycle t) {
    sim::Event e;
    e.time = t;
    e.type = sim::EventType::kLinkDeliver;
    e.aux = static_cast<std::uint32_t>(t);
    return e;
  };

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < depth; ++i) q.push(make_event(now + next_delta()));
  res.push_ns = seconds_since(t0) * 1e9 / static_cast<double>(depth);

  // Steady state: pop the earliest event and schedule a successor, the
  // hold-and-regenerate pattern every simulated packet follows.
  t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events; ++i) {
    const sim::Event e = q.pop();
    now = e.time;
    res.checksum = res.checksum * 1099511628211ull + (e.time ^ e.seq);
    q.push(make_event(now + next_delta()));
  }
  res.events_per_sec = static_cast<double>(events) / seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  while (!q.empty()) {
    const sim::Event e = q.pop();
    res.checksum = res.checksum * 1099511628211ull + (e.time ^ e.seq);
  }
  res.pop_ns = seconds_since(t0) * 1e9 / static_cast<double>(depth);
  return res;
}

/// Best of `reps` runs: wall-clock microbenchmarks are noisy downward only
/// (scheduling, frequency ramps), so the fastest run is the least-disturbed
/// estimate. The pop-order checksum must agree across every run.
QueueResult measure_queue(sim::EventQueueImpl impl, std::size_t depth,
                          std::uint64_t events, std::uint64_t seed,
                          unsigned reps) {
  QueueResult best = measure_queue_once(impl, depth, events, seed);
  for (unsigned r = 1; r < reps; ++r) {
    const QueueResult run = measure_queue_once(impl, depth, events, seed);
    if (run.checksum != best.checksum) {
      std::cerr << "error: queue replay checksum varies across runs\n";
      std::exit(2);
    }
    best.events_per_sec = std::max(best.events_per_sec, run.events_per_sec);
    best.push_ns = std::min(best.push_ns, run.push_ns);
    best.pop_ns = std::min(best.pop_ns, run.pop_ns);
  }
  return best;
}

struct SimResult {
  double seconds = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
};

SimResult measure_sim(const PaperRunConfig& cfg, const char* queue_env) {
  setenv("IBARB_EVENT_QUEUE", queue_env, 1);
  PaperRun run(cfg, PaperRun::DeferSim{});
  const auto t0 = std::chrono::steady_clock::now();
  run.run();
  SimResult res;
  res.seconds = seconds_since(t0);
  res.events = run.summary.events;
  res.events_per_sec = static_cast<double>(res.events) / res.seconds;
  unsetenv("IBARB_EVENT_QUEUE");
  return res;
}

double measure_arbiter(const iba::VlArbitrationTable& t,
                       const iba::ReadyBytes& ready, std::uint64_t decisions) {
  iba::VlArbiter arb(t);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < decisions; ++i) {
    const auto d = arb.arbitrate(ready);
    sink += d ? d->vl : 0;
  }
  const double secs = seconds_since(t0);
  // Keep the loop observable without google-benchmark's DoNotOptimize.
  volatile std::uint64_t keep = sink;
  (void)keep;
  return static_cast<double>(decisions) / secs;
}

}  // namespace

int run_json_harness(int argc, const char* const* argv) {
  const util::Cli cli(argc, argv);
  (void)cli.get_bool("json", true);  // consumed; routing happened in main()
  const std::string out_path = cli.get("out", "BENCH_micro.json");
  const auto depth =
      static_cast<std::size_t>(cli.get_int("queue-depth", 20000));
  const auto queue_events =
      static_cast<std::uint64_t>(cli.get_int("queue-events", 2'000'000));
  const auto queue_reps =
      static_cast<unsigned>(cli.get_int("queue-reps", 3));
  const auto arb_decisions =
      static_cast<std::uint64_t>(cli.get_int("arb-decisions", 2'000'000));
  const bool skip_sim = cli.get_bool("skip-sim", false);

  PaperRunConfig sim_cfg;
  sim_cfg.switches = static_cast<unsigned>(cli.get_int("switches", 16));
  sim_cfg.min_rx_packets =
      static_cast<std::uint64_t>(cli.get_int("packets", 10));
  sim_cfg.warmup = static_cast<iba::Cycle>(cli.get_int("warmup", 500'000));
  if (const auto unused = cli.unused_flags(); !unused.empty())
    std::cerr << "warning: unused flags: " << unused << "\n";

  std::cerr << "[bench_micro] queue replay (depth " << depth << ", "
            << queue_events << " events, best of " << queue_reps
            << ") x2 impls...\n";
  const QueueResult wheel = measure_queue(sim::EventQueueImpl::kWheel, depth,
                                          queue_events, /*seed=*/2027,
                                          queue_reps);
  const QueueResult heap = measure_queue(sim::EventQueueImpl::kBinaryHeap,
                                         depth, queue_events, /*seed=*/2027,
                                         queue_reps);
  const bool order_match = wheel.checksum == heap.checksum;

  SimResult sim_wheel, sim_heap;
  if (!skip_sim) {
    std::cerr << "[bench_micro] fig4-style sim, wheel queue...\n";
    sim_wheel = measure_sim(sim_cfg, "wheel");
    std::cerr << "[bench_micro] fig4-style sim, heap queue...\n";
    sim_heap = measure_sim(sim_cfg, "heap");
  }

  std::cerr << "[bench_micro] arbiter decision rates...\n";
  iba::VlArbitrationTable dense;
  for (unsigned i = 0; i < iba::kArbTableEntries; ++i)
    dense.set_high_entry(
        i, iba::ArbTableEntry{static_cast<iba::VirtualLane>(i % 10),
                              static_cast<std::uint8_t>(100 + i % 50)});
  iba::ReadyBytes dense_ready{};
  for (unsigned vl = 0; vl < 10; vl += 2) dense_ready[vl] = 282;

  iba::VlArbitrationTable sparse;
  for (unsigned i = 0; i < iba::kArbTableEntries; i += 16)
    sparse.set_high_entry(i, iba::ArbTableEntry{3, 10});
  iba::ReadyBytes sparse_ready{};
  sparse_ready[3] = 4122;

  const double dense_rate = measure_arbiter(dense, dense_ready, arb_decisions);
  const double sparse_rate =
      measure_arbiter(sparse, sparse_ready, arb_decisions);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"schema\": 1,\n"
      << "  \"queue\": {\n"
      << "    \"workload\": \"fig4-shaped event stream\",\n"
      << "    \"depth\": " << depth << ",\n"
      << "    \"events\": " << queue_events << ",\n"
      << "    \"wheel\": {\"events_per_sec\": " << wheel.events_per_sec
      << ", \"push_ns\": " << wheel.push_ns << ", \"pop_ns\": " << wheel.pop_ns
      << "},\n"
      << "    \"heap\": {\"events_per_sec\": " << heap.events_per_sec
      << ", \"push_ns\": " << heap.push_ns << ", \"pop_ns\": " << heap.pop_ns
      << "},\n"
      << "    \"speedup\": " << wheel.events_per_sec / heap.events_per_sec
      << ",\n"
      << "    \"pop_order_identical\": " << (order_match ? "true" : "false")
      << "\n"
      << "  },\n";
  if (!skip_sim) {
    out << "  \"sim_fig4\": {\n"
        << "    \"switches\": " << sim_cfg.switches << ",\n"
        << "    \"wheel\": {\"events\": " << sim_wheel.events
        << ", \"seconds\": " << sim_wheel.seconds
        << ", \"events_per_sec\": " << sim_wheel.events_per_sec << "},\n"
        << "    \"heap\": {\"events\": " << sim_heap.events
        << ", \"seconds\": " << sim_heap.seconds
        << ", \"events_per_sec\": " << sim_heap.events_per_sec << "},\n"
        << "    \"speedup\": "
        << sim_wheel.events_per_sec / sim_heap.events_per_sec << ",\n"
        << "    \"events_identical\": "
        << (sim_wheel.events == sim_heap.events ? "true" : "false") << "\n"
        << "  },\n";
  }
  out << "  \"arbiter\": {\n"
      << "    \"dense_decisions_per_sec\": " << dense_rate << ",\n"
      << "    \"sparse_decisions_per_sec\": " << sparse_rate << "\n"
      << "  }\n"
      << "}\n";
  out.close();

  std::cout << "wrote " << out_path << "\n"
            << "queue   wheel " << wheel.events_per_sec / 1e6 << " Mev/s, heap "
            << heap.events_per_sec / 1e6
            << " Mev/s, speedup " << wheel.events_per_sec / heap.events_per_sec
            << "x, order " << (order_match ? "identical" : "DIVERGED") << "\n";
  if (!skip_sim)
    std::cout << "sim     wheel " << sim_wheel.events_per_sec / 1e6
              << " Mev/s, heap " << sim_heap.events_per_sec / 1e6
              << " Mev/s, speedup "
              << sim_wheel.events_per_sec / sim_heap.events_per_sec << "x\n";
  std::cout << "arbiter dense " << dense_rate / 1e6 << " Mdec/s, sparse "
            << sparse_rate / 1e6 << " Mdec/s\n";
  return order_match ? 0 : 2;
}

}  // namespace ibarb::bench
