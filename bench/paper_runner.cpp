#include "paper_runner.hpp"

#include "network/routing_engine.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace ibarb::bench {

PaperRunConfig config_from_cli(const util::Cli& cli, PaperRunConfig base) {
  base.switches =
      static_cast<unsigned>(cli.get_int("switches", base.switches));
  const auto mtu = cli.get("mtu", "");
  if (mtu == "small" || mtu == "256") base.mtu = iba::Mtu::kMtu256;
  if (mtu == "1024") base.mtu = iba::Mtu::kMtu1024;
  if (mtu == "2048") base.mtu = iba::Mtu::kMtu2048;
  if (mtu == "large" || mtu == "4096") base.mtu = iba::Mtu::kMtu4096;
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", base.seed));
  base.min_rx_packets = static_cast<std::uint64_t>(
      cli.get_int("packets", base.min_rx_packets));
  base.warmup =
      static_cast<iba::Cycle>(cli.get_int("warmup", base.warmup));
  base.besteffort_load =
      cli.get_double("besteffort-load", base.besteffort_load);
  if (cli.get_bool("quick", false)) {
    base.min_rx_packets = 10;
    base.warmup = 500'000;
  }
  const auto xbar = cli.get("crossbar", "");
  if (!xbar.empty()) {
    const auto impl = sched::parse_crossbar_impl(xbar);
    if (!impl) {
      throw std::invalid_argument(
          "flag --crossbar: unknown crossbar scheduler '" + xbar +
          "' (expected " + std::string(sched::kCrossbarImplNames) + ")");
    }
    base.crossbar = *impl;
  }
  const auto shards = cli.get_int("shards", 0);
  if (shards < 0 || shards > 64) {
    throw std::invalid_argument(
        "flag --shards expects a shard count in [0, 64], got " +
        std::to_string(shards));
  }
  base.shards = static_cast<unsigned>(shards);
  base.topo = cli.get("topo", base.topo);
  if (!base.topo.empty()) {
    try {
      (void)network::TopologySpec::parse(base.topo);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("flag --topo: " + std::string(e.what()));
    }
  }
  base.routing = cli.get("routing", base.routing);
  if (!base.routing.empty() && !network::is_routing_engine(base.routing)) {
    throw std::invalid_argument(
        "flag --routing: unknown routing engine '" + base.routing +
        "' (expected " + std::string(network::kRoutingEngineNames) + ")");
  }
  return base;
}

network::TopologySpec resolve_topology(const PaperRunConfig& cfg) {
  auto spec = cfg.topo.empty() ? network::topology_spec_from_env()
                               : network::TopologySpec::parse(cfg.topo);
  if (spec.family() == "irregular") {
    // Keep the pre-registry knobs meaningful: an irregular spec that does
    // not pin switches/seed itself inherits them from --switches/--seed.
    if (!spec.has("switches")) spec.set("switches", cfg.switches);
    if (!spec.has("seed")) spec.set("seed", cfg.seed);
  }
  return spec;
}

std::string resolve_routing(const PaperRunConfig& cfg) {
  return cfg.routing.empty() ? network::routing_engine_from_env()
                             : cfg.routing;
}

unsigned shards_from_env() {
  // IBARB_SHARDS=N reruns any bench binary on the parallel core (CI diffs
  // sharded vs sequential output). Unset or unparsable means sequential.
  const char* v = std::getenv("IBARB_SHARDS");
  if (v == nullptr || *v == '\0') return 1;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 1 || n > 64) return 1;
  return static_cast<unsigned>(n);
}

sim::EventQueueImpl queue_impl_from_env() {
  // IBARB_EVENT_QUEUE=heap|wheel lets CI diff the two queue implementations
  // through an unmodified bench binary. Anything else (including unset)
  // means the default wheel.
  const char* v = std::getenv("IBARB_EVENT_QUEUE");
  if (v != nullptr && std::strcmp(v, "heap") == 0)
    return sim::EventQueueImpl::kBinaryHeap;
  return sim::EventQueueImpl::kWheel;
}

PaperRun::PaperRun(PaperRunConfig c) : PaperRun(c, DeferSim{}) { run(); }

PaperRun::PaperRun(PaperRunConfig c, DeferSim) : cfg(c) {
  graph = resolve_topology(cfg).build();
  sm = std::make_unique<subnet::SubnetManager>(graph, resolve_routing(cfg));

  qos::AdmissionControl::Config ac;
  ac.policy = cfg.policy;
  ac.scheme = cfg.scheme;
  ac.seed = cfg.seed;
  ac.limit_of_high_priority = cfg.limit_of_high_priority;
  ac.max_packet_wire_bytes =
      iba::mtu_bytes(cfg.mtu) + iba::kPacketOverheadBytes;
  admission = std::make_unique<qos::AdmissionControl>(
      graph, sm->routes(), qos::paper_catalogue(), ac);

  sim::SimConfig sc;
  sc.max_payload_bytes = iba::mtu_bytes(cfg.mtu);
  sc.buffer_packets = cfg.buffer_packets;
  sc.seed = cfg.seed;
  sc.queue_impl = queue_impl_from_env();
  sc.shards = cfg.shards != 0 ? cfg.shards : shards_from_env();
  sc.crossbar_impl =
      cfg.crossbar ? *cfg.crossbar : sched::crossbar_impl_from_env();
  sc.trace_capacity = cfg.trace_capacity;
  sc.sample_every = cfg.sample_every;
  sc.profile = cfg.profile;
  sim = std::make_unique<sim::Simulator>(graph, sm->routes(), sc);

  traffic::WorkloadConfig wc;
  wc.mtu = cfg.mtu;
  wc.seed = cfg.seed;
  wc.besteffort_load = cfg.besteffort_load;
  wc.oversend_factor = cfg.oversend_factor;
  wc.oversend_sl_mask = cfg.oversend_sl_mask;
  wc.vbr = cfg.vbr;
  wc.vbr_on_fraction = cfg.vbr_on_fraction;
  workload =
      traffic::build_paper_workload(graph, sm->routes(), *admission, *sim, wc);

  sm->configure_fabric(*sim, *admission);
}

void PaperRun::run() {
  summary = sim->run_paper_phases(cfg.warmup, cfg.min_rx_packets,
                                  cfg.hard_limit);
  if (sim->series() != nullptr) series = sim->series()->finalize(sim->now());
}

std::unique_ptr<PaperRun> run_paper_experiment(PaperRunConfig cfg) {
  return std::make_unique<PaperRun>(cfg);
}

std::vector<PaperRun::SlSeries> PaperRun::per_sl() const {
  std::vector<SlSeries> out(10);
  std::vector<std::array<std::uint64_t, sim::kDelayThresholds>> within(10);
  std::vector<std::array<std::uint64_t, sim::kJitterBins>> jitter(10);
  for (unsigned sl = 0; sl < 10; ++sl) out[sl].sl = sl;

  for (const auto& ec : workload.connections) {
    const auto& c = sim->metrics().connections[ec.flow];
    auto& s = out[ec.sl];
    ++s.connections;
    s.rx_packets += c.rx_packets;
    s.deadline_misses += c.deadline_misses;
    for (std::size_t i = 0; i < sim::kDelayThresholds; ++i)
      within[ec.sl][i] += c.within_threshold[i];
    for (std::size_t b = 0; b < sim::kJitterBins; ++b)
      jitter[ec.sl][b] += c.jitter_bins[b];
  }
  for (unsigned sl = 0; sl < 10; ++sl) {
    auto& s = out[sl];
    if (s.rx_packets > 0) {
      for (std::size_t i = 0; i < sim::kDelayThresholds; ++i)
        s.within[i] = static_cast<double>(within[sl][i]) /
                      static_cast<double>(s.rx_packets);
    }
    std::uint64_t jt = 0;
    for (const auto v : jitter[sl]) jt += v;
    if (jt > 0) {
      for (std::size_t b = 0; b < sim::kJitterBins; ++b)
        s.jitter[b] =
            static_cast<double>(jitter[sl][b]) / static_cast<double>(jt);
    }
  }
  return out;
}

PaperRun::BestWorst PaperRun::best_worst(iba::ServiceLevel sl) const {
  BestWorst bw;
  bool first = true;
  for (std::size_t i = 0; i < workload.connections.size(); ++i) {
    const auto& ec = workload.connections[i];
    if (ec.sl != sl) continue;
    const auto& c = sim->metrics().connections[ec.flow];
    if (c.rx_packets == 0) continue;
    std::array<double, sim::kDelayThresholds> within{};
    for (std::size_t k = 0; k < sim::kDelayThresholds; ++k)
      within[k] = c.fraction_within(k);
    // Lexicographic over thresholds, tightest first: the whole curve breaks
    // ties, not just the D/30 point.
    if (first || within > bw.best_within) {
      bw.best = i;
      bw.best_within = within;
    }
    if (first || within < bw.worst_within) {
      bw.worst = i;
      bw.worst_within = within;
    }
    first = false;
  }
  bw.found = !first;
  return bw;
}

PaperRun::Table2Row PaperRun::table2() const {
  Table2Row row;
  const auto& m = sim->metrics();
  const auto window = static_cast<double>(m.window_length());
  const auto nodes = static_cast<double>(graph.hosts().size());
  if (window <= 0.0 || nodes <= 0.0) return row;

  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  for (const auto& c : m.connections) {
    injected += c.tx_wire_bytes;
    delivered += c.rx_wire_bytes;
  }
  row.injected_bytes_per_cycle_per_node =
      static_cast<double>(injected) / window / nodes;
  row.delivered_bytes_per_cycle_per_node =
      static_cast<double>(delivered) / window / nodes;

  double host_util = 0.0, sw_util = 0.0;
  double host_res = 0.0, sw_res = 0.0;
  unsigned hosts = 0, switches = 0;
  for (const auto& p : m.ports) {
    if (p.is_host_interface) {
      host_util += p.utilization(m.window_length());
      host_res += p.reserved_mbps;
      ++hosts;
    } else {
      sw_util += p.utilization(m.window_length());
      sw_res += p.reserved_mbps;
      ++switches;
    }
  }
  if (hosts > 0) {
    row.host_utilization = host_util / hosts;
    row.host_reserved_mbps = host_res / hosts;
  }
  if (switches > 0) {
    row.switch_utilization = sw_util / switches;
    row.switch_reserved_mbps = sw_res / switches;
  }
  return row;
}

std::vector<PaperRun::SlThroughput> PaperRun::per_sl_throughput() const {
  std::vector<SlThroughput> out;
  const auto window = static_cast<double>(sim->metrics().window_length());
  for (unsigned sl = 0; sl < 10; ++sl) {
    SlThroughput t{static_cast<iba::ServiceLevel>(sl), 0.0, 0.0, 0.0};
    std::uint64_t rx = 0, misses = 0, bytes = 0;
    for (const auto& ec : workload.connections) {
      if (ec.sl != sl) continue;
      t.reserved_wire_mbps += ec.wire_mbps;
      const auto& c = sim->metrics().connections[ec.flow];
      rx += c.rx_packets;
      misses += c.deadline_misses;
      bytes += c.rx_wire_bytes;
    }
    if (window > 0.0)
      t.delivered_wire_mbps =
          static_cast<double>(bytes) * 8.0 / (window * iba::kNsPerCycle);
    // bytes*8 bits over window*4 ns = (bits/ns) * 1000 = Mbps... convert:
    // bits / ns == Gbps; x1000 -> Mbps.
    t.delivered_wire_mbps *= 1000.0;
    if (rx > 0)
      t.miss_fraction =
          static_cast<double>(misses) / static_cast<double>(rx);
    out.push_back(t);
  }
  return out;
}

std::string threshold_label(std::size_t index) {
  const double div = sim::kDelayThresholdDivisors[index];
  if (div == 1.0) return "D";
  std::ostringstream os;
  if (div == static_cast<double>(static_cast<int>(div)))
    os << "D/" << static_cast<int>(div);
  else
    os << "D/" << div;
  return os.str();
}

std::string jitter_label(std::size_t bin) {
  static const char* kLabels[] = {
      "<-IAT",          "[-IAT,-3/4)",   "[-3/4,-1/2)", "[-1/2,-1/4)",
      "[-1/4,-1/8)",    "[-1/8,+1/8)",   "[+1/8,+1/4)", "[+1/4,+1/2)",
      "[+1/2,+3/4)",    "[+3/4,+IAT)",   ">+IAT"};
  static_assert(std::size(kLabels) == sim::kJitterBins);
  return kLabels[bin];
}

}  // namespace ibarb::bench
