// Parallel experiment-sweep engine for the paper-reproduction benches.
//
// A sweep is a vector of PaperRunConfigs; each config becomes one
// heap-pinned PaperRun executed on its own worker. The determinism
// contract (docs/SWEEP.md): stdout is byte-identical for every `--jobs`
// value, because
//   * runs share no mutable state — every RNG stream, metrics object and
//     simulator lives inside its own PaperRun;
//   * each run's seed is a pure function of (base seed, run index), never
//     of scheduling order;
//   * results land in slot run_index and all aggregation/printing happens
//     afterwards, on the calling thread, in run-index order.
// Only the timing report (stderr) mentions wall-clock numbers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "paper_runner.hpp"

namespace ibarb::bench {

struct SweepOptions {
  /// Worker lanes; 0 means hardware_concurrency. 1 runs inline on the
  /// calling thread with no pool at all — today's sequential behaviour.
  unsigned jobs = 0;
  /// When engaged, run i's seed is replaced by derive_run_seed(*base_seed,
  /// i): decorrelated replicas, independent of scheduling order. When
  /// disengaged each config keeps its own seed — the right choice for
  /// controlled comparisons (same fabric, one knob varied).
  std::optional<std::uint64_t> base_seed;
  /// Per-run timing lines on stderr (suppressed in tests).
  bool timing = true;
  /// Prefix for the timing lines, e.g. "mtu" -> "[sweep:mtu] ...".
  std::string label = "sweep";
};

/// Reads `--jobs` (and `--sweep-seed`, which engages base_seed) on top of
/// the given label.
SweepOptions sweep_options_from_cli(const util::Cli& cli, std::string label);

/// SplitMix64-derived per-run seed: mixes the run index into the base seed
/// so identical configs become independent replicas while remaining a pure
/// function of (base_seed, run_index).
std::uint64_t derive_run_seed(std::uint64_t base_seed, std::size_t run_index);

struct SweepResult {
  /// Same order as the input configs, regardless of jobs/scheduling.
  std::vector<std::unique_ptr<PaperRun>> runs;
  std::vector<double> run_ms;  ///< Per-run wall time.
  double wall_ms = 0.0;        ///< Whole-sweep wall time.
  unsigned jobs = 1;           ///< Lanes actually used.
};

/// Executes every config (possibly in parallel) and reports timing on
/// stderr. Exceptions from any run are rethrown (lowest run index first)
/// after all workers have drained.
SweepResult run_sweep(const std::vector<PaperRunConfig>& cfgs,
                      const SweepOptions& opts);

}  // namespace ibarb::bench
