// Shared harness for the paper-reproduction benches: stands up the full
// pipeline (irregular fabric -> subnet manager -> Table-1 workload ->
// admission -> simulation) and exposes the aggregations each table/figure
// needs. Lives in bench/ because it is reproduction plumbing, not library
// API.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "network/registry.hpp"
#include "network/topology.hpp"
#include "obs/series.hpp"
#include "qos/admission.hpp"
#include "sched/crossbar_impl.hpp"
#include "subnet/subnet_manager.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"

namespace ibarb::bench {

struct PaperRunConfig {
  unsigned switches = 16;           ///< Paper's headline network size.
  iba::Mtu mtu = iba::Mtu::kMtu256; ///< Small packets; kMtu4096 = large.
  std::uint64_t seed = 21;
  std::uint64_t min_rx_packets = 30;
  iba::Cycle warmup = 2'000'000;
  iba::Cycle hard_limit = 3'000'000'000;
  double besteffort_load = 0.10;
  qos::Scheme scheme = qos::Scheme::kNewProposal;
  arbtable::FillPolicy policy = arbtable::FillPolicy::kBitReversal;
  double oversend_factor = 1.0;
  std::uint16_t oversend_sl_mask = 0;
  bool vbr = false;                  ///< VBR instead of CBR sources.
  double vbr_on_fraction = 0.25;
  unsigned buffer_packets = 4;       ///< Per-VL buffer depth.
  std::uint8_t limit_of_high_priority = iba::kUnlimitedHighPriority;
  /// Packet-trace ring size (0 = off). Benches enable it on run 0 of a
  /// sweep when --trace-out is given; the run is self-contained and
  /// deterministic, so the exported trace is byte-identical for any --jobs.
  std::size_t trace_capacity = 0;
  /// Time-series sampling cadence (--sample-every); 0 = off. Like tracing,
  /// benches enable this on run 0 only (bench::apply_run0_observability).
  std::uint64_t sample_every = 0;
  /// Wall-clock self-profiler (--profile); profile.* telemetry only.
  bool profile = false;
  /// Crossbar scheduler. Engaged by --crossbar; empty defers to the
  /// IBARB_CROSSBAR env (then wrr) — flag beats env beats default, the same
  /// precedence every knob here follows.
  std::optional<sched::CrossbarImpl> crossbar;
  /// Parallel simulation shards (--shards); 0 defers to IBARB_SHARDS, then
  /// 1 (sequential). Output is byte-identical for any value.
  unsigned shards = 0;
  /// Topology spec ("family:k=v,...", network/registry.hpp). Engaged by
  /// --topo; empty defers to IBARB_TOPO, then the paper's irregular family.
  /// For the irregular family, --switches/--seed still fill in any
  /// parameter the spec leaves unset, so the pre-registry flags keep
  /// working unchanged.
  std::string topo;
  /// Routing engine name (network/routing_engine.hpp). Engaged by
  /// --routing; empty defers to IBARB_ROUTING, then updown.
  std::string routing;
};

/// Applies the common bench flags (--switches --mtu --seed --packets
/// --warmup --quick) on top of the defaults.
PaperRunConfig config_from_cli(const util::Cli& cli, PaperRunConfig base = {});

/// IBARB_EVENT_QUEUE=heap|wheel selects the event-queue implementation
/// through an unmodified bench binary (CI diffs the two); anything else,
/// including unset, means the default wheel.
sim::EventQueueImpl queue_impl_from_env();

/// IBARB_SHARDS=N selects the parallel-core shard count through an
/// unmodified bench binary (CI reruns the suite sharded); unset, empty, or
/// unparsable means 1 (sequential).
unsigned shards_from_env();

/// The topology spec a config resolves to (flag beats IBARB_TOPO beats
/// irregular), with --switches/--seed filled into an irregular spec's unset
/// parameters. Every fabric a PaperRun builds comes from this.
network::TopologySpec resolve_topology(const PaperRunConfig& cfg);

/// The routing engine a config resolves to (flag beats IBARB_ROUTING beats
/// updown).
std::string resolve_routing(const PaperRunConfig& cfg);

/// One complete simulated experiment. Members reference each other, so the
/// struct is heap-pinned (no copies/moves).
struct PaperRun {
  PaperRunConfig cfg;
  network::FabricGraph graph;
  std::unique_ptr<subnet::SubnetManager> sm;
  std::unique_ptr<qos::AdmissionControl> admission;
  std::unique_ptr<sim::Simulator> sim;
  traffic::Workload workload;
  sim::RunSummary summary;
  /// Finalized time-series of the run; engaged when cfg.sample_every > 0
  /// (filled by run() after the last simulated cycle).
  std::optional<obs::SeriesData> series;

  PaperRun(const PaperRun&) = delete;
  PaperRun& operator=(const PaperRun&) = delete;
  explicit PaperRun(PaperRunConfig c);

  /// Tag for the two-phase form used by timing harnesses: the constructor
  /// stands up the fabric/workload only, and run() executes the simulation
  /// phases (so setup cost can be excluded from a measurement).
  struct DeferSim {};
  PaperRun(PaperRunConfig c, DeferSim);
  void run();

  // --- Aggregations -------------------------------------------------------

  struct SlSeries {
    iba::ServiceLevel sl = 0;
    std::uint64_t connections = 0;
    std::uint64_t rx_packets = 0;
    /// Fraction of packets within deadline/divisor, per threshold index.
    std::array<double, sim::kDelayThresholds> within{};
    /// Fraction of inter-arrival deviations per jitter bin.
    std::array<double, sim::kJitterBins> jitter{};
    std::uint64_t deadline_misses = 0;
  };

  /// Figure 4 / 5 series for the ten QoS SLs.
  std::vector<SlSeries> per_sl() const;

  /// Figure 6: indices (into workload.connections) of the connections of
  /// `sl` with the lowest/highest fraction meeting the tightest threshold.
  struct BestWorst {
    /// False when no connection of the SL received a packet — best/worst
    /// are then meaningless and callers must skip the cell.
    bool found = false;
    std::size_t best = 0;
    std::size_t worst = 0;
    std::array<double, sim::kDelayThresholds> best_within{};
    std::array<double, sim::kDelayThresholds> worst_within{};
  };
  BestWorst best_worst(iba::ServiceLevel sl) const;

  /// Table 2 aggregates.
  struct Table2Row {
    double injected_bytes_per_cycle_per_node = 0.0;
    double delivered_bytes_per_cycle_per_node = 0.0;
    double host_utilization = 0.0;     ///< Mean over host interfaces.
    double switch_utilization = 0.0;   ///< Mean over wired switch ports.
    double host_reserved_mbps = 0.0;
    double switch_reserved_mbps = 0.0;
  };
  Table2Row table2() const;

  /// Per-SL delivered payload rate vs reservation (misbehaviour bench).
  struct SlThroughput {
    iba::ServiceLevel sl;
    double reserved_wire_mbps;
    double delivered_wire_mbps;
    double miss_fraction;  ///< Deadline misses / rx packets.
  };
  std::vector<SlThroughput> per_sl_throughput() const;
};

std::unique_ptr<PaperRun> run_paper_experiment(PaperRunConfig cfg);

/// Human label for a threshold index ("D/30" ... "D").
std::string threshold_label(std::size_t index);

/// Human label for a jitter bin ("<-IAT", "[-IAT,-3IAT/4)", ..., ">+IAT").
std::string jitter_label(std::size_t bin);

}  // namespace ibarb::bench
