// Experiment E1 — reproduces Table 2 of the paper: injected and delivered
// traffic (bytes/cycle/node), average utilization and average bandwidth
// reservation at host interfaces and switch ports, for small (256 B) and
// large (4 KB) packets on the 16-switch / 64-host irregular network. The
// two cases run in parallel via the sweep engine (--jobs N); both keep the
// same seed, so they share one fabric as the paper's comparison requires.
//
// Expected shape (paper §4.3): utilization approaches but never exceeds the
// 80 % reservable ceiling; small packets deliver slightly more wire
// throughput because per-packet header overhead makes them carry more
// protocol bytes for the same payload bandwidth.
#include <iostream>

#include "report_common.hpp"
#include "sweep_runner.hpp"
#include "util/table_printer.hpp"

using namespace ibarb;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto sf = cli.std_flags(21);
  const auto base = bench::config_from_cli(cli);

  if (!sf.json) {
    std::cout << "=== Table 2: traffic and utilization for different packet "
                 "sizes ===\n";
    std::cout << "network: " << base.switches << " switches / "
              << base.switches * 4 << " hosts, 1x links, seed " << base.seed
              << "\n\n";
  }

  struct Case {
    const char* name;
    const char* key;
    iba::Mtu mtu;
  };
  const Case cases[] = {{"Small (256B)", "small", iba::Mtu::kMtu256},
                        {"Large (4KB)", "large", iba::Mtu::kMtu4096}};

  std::vector<bench::PaperRunConfig> cfgs;
  for (const auto& c : cases) {
    auto cfg = base;
    cfg.mtu = c.mtu;
    cfgs.push_back(cfg);
  }
  bench::apply_run0_observability(cfgs[0], sf);
  const auto sweep =
      bench::run_sweep(cfgs, bench::sweep_options_from_cli(cli, "table2"));

  int rc = 0;
  if (sf.json) {
    obs::Report report("table2");
    bench::echo_config(report, base);
    report.telemetry(bench::merged_telemetry(sweep));
    bench::attach_series(report, *sweep.runs[0]);
    report.figure("rows", [&](util::JsonWriter& w) {
      w.begin_object();
      for (std::size_t i = 0; i < std::size(cases); ++i) {
        w.key(cases[i].key);
        bench::write_table2(w, sweep.runs[i]->table2());
      }
      w.end_object();
    });
    rc = bench::emit_report(report, cli);
  } else {
    util::TablePrinter table({"Packet size", "Injected (B/cyc/node)",
                              "Delivered (B/cyc/node)", "Host util (%)",
                              "Switch util (%)", "Host resv (Mbps)",
                              "Switch resv (Mbps)"});
    for (std::size_t i = 0; i < std::size(cases); ++i) {
      const auto& run = *sweep.runs[i];
      const auto row = run.table2();
      table.add_row({cases[i].name,
                     util::TablePrinter::num(
                         row.injected_bytes_per_cycle_per_node, 4),
                     util::TablePrinter::num(
                         row.delivered_bytes_per_cycle_per_node, 4),
                     util::TablePrinter::num(row.host_utilization * 100.0, 2),
                     util::TablePrinter::num(row.switch_utilization * 100.0, 2),
                     util::TablePrinter::num(row.host_reserved_mbps, 1),
                     util::TablePrinter::num(row.switch_reserved_mbps, 1)});
      std::cerr << "[" << cases[i].name << "] connections=" << run.workload.accepted
                << " window=" << run.summary.window_cycles << " cycles"
                << (run.summary.hit_hard_limit ? " (HARD LIMIT)" : "") << "\n";
    }
    table.print(std::cout);
    std::cout << "\nNote: the reservable ceiling is 80% of each link; 20% is\n"
                 "kept for best-effort/challenged traffic on the low-priority\n"
                 "table, so utilization close to (but below) 80% matches the\n"
                 "paper's quasi-fully-loaded scenario.\n";
  }

  if (!sf.trace_out.empty())
    bench::emit_run_trace(sf.trace_out, *sweep.runs[0]);
  if (!bench::export_series_csv(*sweep.runs[0], sf)) rc = 1;

  cli.warn_unused(std::cerr);
  return rc;
}
