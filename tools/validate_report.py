#!/usr/bin/env python3
"""Validate an ibarb.report/2 JSON file against tools/report_schema.json.

Stdlib-only (CI must not pip-install anything), so this implements the small
JSON-Schema subset the checked-in schema actually uses: type, const,
required, properties, additionalProperties, items, minProperties.

Usage:  validate_report.py [--schema FILE] report.json [report2.json ...]
        validate_report.py -          # read one report from stdin
Exit 0 when every input validates; 1 with a path-qualified error otherwise.
"""

import argparse
import json
import os
import sys


class SchemaError(Exception):
    def __init__(self, path, message):
        super().__init__(f"{path or '$'}: {message}")


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected, path):
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        if name == "integer":
            # JSON has one number type; an integral float (1.0) counts.
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                return
            if isinstance(value, float) and value.is_integer():
                return
        elif name == "number":
            if not isinstance(value, bool) and isinstance(value, (int, float)):
                return
        elif isinstance(value, _TYPES[name]):
            return
    raise SchemaError(path, f"expected type {expected}, got {type(value).__name__}")


def validate(value, schema, path=""):
    if "const" in schema:
        if value != schema["const"]:
            raise SchemaError(path, f"expected {schema['const']!r}, got {value!r}")
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if isinstance(value, dict):
        for req in schema.get("required", ()):
            if req not in value:
                raise SchemaError(path, f"missing required member {req!r}")
        if len(value) < schema.get("minProperties", 0):
            raise SchemaError(path, "object has too few members")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, member in value.items():
            sub = f"{path}.{key}" if path else key
            if key in props:
                validate(member, props[key], sub)
            elif extra is False:
                raise SchemaError(sub, "unexpected member")
            elif isinstance(extra, dict):
                validate(member, extra, sub)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(__file__), "report_schema.json"),
    )
    parser.add_argument("reports", nargs="+", help="report files, or - for stdin")
    args = parser.parse_args(argv)

    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    status = 0
    for name in args.reports:
        try:
            if name == "-":
                report = json.load(sys.stdin)
            else:
                with open(name, encoding="utf-8") as f:
                    report = json.load(f)
            validate(report, schema)
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"{name}: FAIL: {e}", file=sys.stderr)
            status = 1
        else:
            print(f"{name}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
