#!/usr/bin/env python3
"""Validate an ibarb.report/2 JSON file against tools/report_schema.json.

Stdlib-only (CI must not pip-install anything), so this implements the small
JSON-Schema subset the checked-in schema actually uses: type, const,
required, properties, additionalProperties, items, minProperties.

On top of the schema, two semantic checks:
  * Quarantine: the wall-clock telemetry families (profile.*, shard.*) may
    appear in the `telemetry` section but must NEVER leak into the `series`
    section — series output is part of the byte-determinism contract across
    --jobs and --shards, and wall-clock columns would break it.
  * shard_* shape: when the shard.* family is present it must carry the
    shard.count gauge; a shard_balance figure (bench_scaling) must carry
    per-shard arrays of equal length and a max/min load ratio that is
    either 0.0 (sequential/no data) or >= 1.0.

Usage:  validate_report.py [--schema FILE] report.json [report2.json ...]
        validate_report.py -          # read one report from stdin
Exit 0 when every input validates; 1 with a path-qualified error otherwise.
"""

import argparse
import json
import os
import sys


class SchemaError(Exception):
    def __init__(self, path, message):
        super().__init__(f"{path or '$'}: {message}")


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected, path):
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        if name == "integer":
            # JSON has one number type; an integral float (1.0) counts.
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                return
            if isinstance(value, float) and value.is_integer():
                return
        elif name == "number":
            if not isinstance(value, bool) and isinstance(value, (int, float)):
                return
        elif isinstance(value, _TYPES[name]):
            return
    raise SchemaError(path, f"expected type {expected}, got {type(value).__name__}")


def validate(value, schema, path=""):
    if "const" in schema:
        if value != schema["const"]:
            raise SchemaError(path, f"expected {schema['const']!r}, got {value!r}")
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if isinstance(value, dict):
        for req in schema.get("required", ()):
            if req not in value:
                raise SchemaError(path, f"missing required member {req!r}")
        if len(value) < schema.get("minProperties", 0):
            raise SchemaError(path, "object has too few members")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, member in value.items():
            sub = f"{path}.{key}" if path else key
            if key in props:
                validate(member, props[key], sub)
            elif extra is False:
                raise SchemaError(sub, "unexpected member")
            elif isinstance(extra, dict):
                validate(member, extra, sub)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


# Families sampled into telemetry but quarantined out of the deterministic
# series section (obs::is_quarantined_name mirrors this list in C++).
QUARANTINED_PREFIXES = ("profile.", "shard.")


def check_semantics(report):
    """Checks the schema cannot express; raises SchemaError on violation."""
    series = report.get("series")
    if isinstance(series, dict):
        for section in ("counters", "gauges"):
            for key in series.get(section, {}):
                if key.startswith(QUARANTINED_PREFIXES):
                    raise SchemaError(
                        f"series.{section}.{key}",
                        "quarantined wall-clock family leaked into series",
                    )

    telemetry = report.get("telemetry")
    if isinstance(telemetry, dict):
        shard_keys = [
            key
            for section in ("counters", "gauges", "histograms")
            for key in telemetry.get(section, {})
            if key.startswith("shard.")
        ]
        if shard_keys and "shard.count" not in telemetry.get("gauges", {}):
            raise SchemaError(
                "telemetry.gauges",
                "shard.* family present but shard.count gauge is missing",
            )

    balance = report.get("figures", {}).get("shard_balance")
    if isinstance(balance, dict):
        for member in (
            "shards",
            "effective_shards",
            "windows",
            "events_per_shard",
            "barrier_wait_ns_per_shard",
            "load_ratio",
            "barrier_wait_share",
            "orchestrator_wait_ns",
        ):
            if member not in balance:
                raise SchemaError(
                    f"figures.shard_balance.{member}", "missing required member"
                )
        events = balance["events_per_shard"]
        waits = balance["barrier_wait_ns_per_shard"]
        if not isinstance(events, list) or not isinstance(waits, list):
            raise SchemaError(
                "figures.shard_balance", "per-shard members must be arrays"
            )
        if len(events) != len(waits):
            raise SchemaError(
                "figures.shard_balance",
                f"per-shard array lengths differ ({len(events)} vs {len(waits)})",
            )
        ratio = balance["load_ratio"]
        if not isinstance(ratio, (int, float)) or isinstance(ratio, bool):
            raise SchemaError("figures.shard_balance.load_ratio", "not a number")
        if ratio != 0.0 and ratio < 1.0:
            raise SchemaError(
                "figures.shard_balance.load_ratio",
                f"max/min ratio must be 0.0 or >= 1.0, got {ratio}",
            )


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(__file__), "report_schema.json"),
    )
    parser.add_argument("reports", nargs="+", help="report files, or - for stdin")
    args = parser.parse_args(argv)

    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    status = 0
    for name in args.reports:
        try:
            if name == "-":
                report = json.load(sys.stdin)
            else:
                with open(name, encoding="utf-8") as f:
                    report = json.load(f)
            validate(report, schema)
            check_semantics(report)
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"{name}: FAIL: {e}", file=sys.stderr)
            status = 1
        else:
            print(f"{name}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
